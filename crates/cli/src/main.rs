//! `experiments` — regenerates every table and figure of the P-OPT paper.
//!
//! Usage:
//!
//! ```text
//! experiments <exp> [--scale tiny|small|standard] [--small] [--jobs N] [--out DIR]
//! experiments all   [--scale S] [--jobs N] [--out DIR]
//! experiments sweep [exp...] [--scale S] [--jobs N] [--out DIR]
//! experiments list
//! ```
//!
//! `<exp>` is one of: table1 table2 table3 table4 fig2 fig4 fig7 fig10
//! fig11 fig12a fig12b fig13 fig14 fig15 fig16, or one of the extension
//! studies ext1 (parallel execution) ext2 (prefetching) ext3 (full policy
//! zoo) ext4 (context switches) ext5 (tie-break ablation) ext6 (huge-page
//! requirement). Results are printed and written as `.txt`/`.csv` under
//! `--out` (default `results/`).
//!
//! `sweep` runs the selected experiments (default: all) through the
//! orchestration harness: cells scheduled across `--jobs` workers, shared
//! prerequisites deduped through an on-disk artifact cache, and a resume
//! journal so a killed sweep restarted with the same arguments finishes
//! only the unfinished cells. Output CSVs are byte-identical to the serial
//! runs at any `--jobs` level. A sweep with failing cells completes the
//! healthy ones, reports the failures, and exits nonzero.
//!
//! `serve` keeps the same machinery resident as a daemon
//! (`POST /v1/sweeps`, `GET /v1/sweeps/{id}`, `GET /v1/healthz`,
//! `GET /v1/metrics`); `submit` is the matching client:
//!
//! ```text
//! experiments serve  [--addr A] [--jobs N] [--queue-depth N] [--out DIR]
//! experiments submit --addr A|ADDRFILE [exp...] [--scale S] [--deadline-ms N] [--no-wait]
//! ```

use popt_cli::exec::Session;
use popt_cli::experiments::{emit_tables, find_experiment, Runner, EXPERIMENTS};
use popt_cli::serve::{run_serve, run_submit, ServeOptions, SubmitOptions};
use popt_cli::sweep::{run_sweep, SweepOptions};
use popt_cli::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: experiments <exp>|all|list [--scale S] [--small] [--jobs N] [--out DIR]");
    eprintln!(
        "       experiments sweep [exp...] [--scale S] [--jobs N] [--out DIR] [--no-trace-share]"
    );
    eprintln!("       experiments trace record|replay|info ... (see: experiments trace --help)");
    eprintln!("       experiments oracle [--sets N] [--ways N] [--seed S] [--deep] [FILE...]");
    eprintln!("       experiments serve [--addr A] [--jobs N] [--queue-depth N] [--out DIR]");
    eprintln!(
        "       experiments submit --addr A|ADDRFILE [exp...] [--scale S] [--deadline-ms N] [--no-wait]"
    );
    eprintln!("experiments:");
    for (name, desc, _) in EXPERIMENTS {
        eprintln!("  {name:8} {desc}");
    }
}

fn parse_serve_args(args: Vec<String>) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => opts.addr = iter.next().ok_or("--addr needs an address")?,
            "--jobs" => {
                let v = iter.next().ok_or("--jobs needs a positive integer")?;
                opts.jobs = popt_cli::runner::parse_threads(&v)
                    .ok_or_else(|| format!("bad --jobs value: {v}"))?;
            }
            "--queue-depth" => {
                let v = iter
                    .next()
                    .ok_or("--queue-depth needs a positive integer")?;
                opts.queue_depth = v
                    .parse()
                    .ok()
                    .filter(|n: &usize| *n > 0)
                    .ok_or_else(|| format!("bad --queue-depth value: {v}"))?;
            }
            "--out" => {
                opts.out = PathBuf::from(iter.next().ok_or("--out needs a directory")?);
            }
            "--inject-fail" => {
                opts.inject_fail = Some(iter.next().ok_or("--inject-fail needs a pattern")?);
            }
            other => return Err(format!("unknown serve argument: {other}")),
        }
    }
    Ok(opts)
}

fn parse_submit_args(args: Vec<String>) -> Result<SubmitOptions, String> {
    let mut opts = SubmitOptions {
        addr: String::new(),
        experiments: Vec::new(),
        scale: Scale::Tiny,
        deadline_ms: None,
        wait: true,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => opts.addr = iter.next().ok_or("--addr needs an address or file")?,
            "--scale" => {
                let v = iter.next().ok_or("--scale needs tiny|small|standard")?;
                opts.scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale: {v}"))?;
            }
            "--deadline-ms" => {
                let v = iter.next().ok_or("--deadline-ms needs milliseconds")?;
                opts.deadline_ms = Some(
                    v.parse()
                        .map_err(|_| format!("bad --deadline-ms value: {v}"))?,
                );
            }
            "--no-wait" => opts.wait = false,
            name if !name.starts_with('-') => opts.experiments.push(name.to_string()),
            other => return Err(format!("unknown submit argument: {other}")),
        }
    }
    if opts.addr.is_empty() {
        return Err("submit requires --addr (an address or the service.addr file)".to_string());
    }
    if opts.experiments.is_empty() {
        return Err("submit requires at least one experiment name".to_string());
    }
    Ok(opts)
}

fn serve_main(args: Vec<String>) -> ExitCode {
    match parse_serve_args(args).map_err(|e| e.to_string()) {
        Ok(opts) => match run_serve(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("serve failed: {err}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn submit_main(args: Vec<String>) -> ExitCode {
    match parse_submit_args(args) {
        Ok(opts) => match run_submit(&opts) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(err) => {
                eprintln!("submit failed: {err}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            ExitCode::FAILURE
        }
    }
}

struct Cli {
    scale: Scale,
    jobs: usize,
    out: Option<PathBuf>,
    names: Vec<String>,
    inject_fail: Option<String>,
    share_traces: bool,
}

fn parse_args(args: Vec<String>) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        scale: Scale::Standard,
        jobs: 1,
        out: None,
        names: Vec::new(),
        inject_fail: None,
        share_traces: true,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--small" => cli.scale = Scale::Small,
            "--scale" => {
                let v = iter.next().ok_or("--scale needs tiny|small|standard")?;
                cli.scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale: {v}"))?;
            }
            "--jobs" => {
                let v = iter.next().ok_or("--jobs needs a positive integer")?;
                cli.jobs = popt_cli::runner::parse_threads(&v)
                    .ok_or_else(|| format!("bad --jobs value: {v}"))?;
            }
            "--out" => {
                cli.out = Some(PathBuf::from(iter.next().ok_or("--out needs a directory")?));
            }
            "--inject-fail" => {
                cli.inject_fail = Some(iter.next().ok_or("--inject-fail needs a pattern")?);
            }
            "--no-trace-share" => cli.share_traces = false,
            "--help" | "-h" => return Ok(None),
            name if !name.starts_with('-') => cli.names.push(name.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Some(cli))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // The service subcommands have their own flag vocabulary; dispatch
    // before the classic parser sees them.
    match args.first().map(String::as_str) {
        Some("serve") => return serve_main(args.split_off(1)),
        Some("submit") => return submit_main(args.split_off(1)),
        Some("trace") => return popt_cli::trace_cmd::trace_main(args.split_off(1)),
        Some("oracle") => return popt_cli::oracle_cmd::oracle_main(args.split_off(1)),
        _ => {}
    }
    let cli = match parse_args(args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            usage();
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let Some((first, rest)) = cli.names.split_first() else {
        usage();
        return ExitCode::FAILURE;
    };
    match first.as_str() {
        "list" => {
            usage();
            ExitCode::SUCCESS
        }
        "sweep" => {
            let opts = SweepOptions {
                scale: cli.scale,
                jobs: cli.jobs,
                out: cli.out.unwrap_or_else(|| PathBuf::from("results/sweep")),
                only: rest.to_vec(),
                inject_fail: cli.inject_fail,
                share_traces: cli.share_traces,
            };
            match run_sweep(&opts) {
                Ok(summary) if summary.failed.is_empty() => ExitCode::SUCCESS,
                Ok(summary) => {
                    eprintln!(
                        "sweep finished with failed experiments: {}",
                        summary.failed.join(", ")
                    );
                    ExitCode::FAILURE
                }
                Err(err) => {
                    eprintln!("sweep failed: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        selected => {
            if !rest.is_empty() {
                eprintln!("only one experiment may be named (or use: sweep {selected} ...)");
                usage();
                return ExitCode::FAILURE;
            }
            let to_run: Vec<&(&str, &str, Runner)> = if selected == "all" {
                EXPERIMENTS.iter().collect()
            } else {
                match find_experiment(selected) {
                    Some(e) => vec![e],
                    None => {
                        eprintln!("unknown experiment: {selected}");
                        usage();
                        return ExitCode::FAILURE;
                    }
                }
            };
            let out = cli.out.unwrap_or_else(|| PathBuf::from("results"));
            let session = Session::parallel(cli.jobs);
            for (name, desc, runner) in to_run {
                eprintln!(">>> {name}: {desc} ({:?} scale)", cli.scale);
                let started = std::time::Instant::now();
                let tables = runner(&session, cli.scale);
                if let Err(err) = emit_tables(&tables, &out, name) {
                    eprintln!("failed to write {name}: {err}");
                    return ExitCode::FAILURE;
                }
                eprintln!("<<< {name} done in {:.1}s", started.elapsed().as_secs_f64());
            }
            ExitCode::SUCCESS
        }
    }
}
