//! `experiments` — regenerates every table and figure of the P-OPT paper.
//!
//! Usage:
//!
//! ```text
//! experiments <exp> [--small] [--out DIR]
//! experiments all   [--small] [--out DIR]
//! experiments list
//! ```
//!
//! `<exp>` is one of: table1 table2 table3 table4 fig2 fig4 fig7 fig10
//! fig11 fig12a fig12b fig13 fig14 fig15 fig16, or one of the extension
//! studies ext1 (parallel execution) ext2 (prefetching) ext3 (full policy
//! zoo) ext4 (context switches) ext5 (tie-break ablation) ext6 (huge-page
//! requirement). Results are printed and written as `.txt`/`.csv` under
//! `--out` (default `results/`).

use popt_cli::experiments::*;
use popt_cli::table::Table;
use popt_cli::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

type Runner = fn(Scale) -> Vec<Table>;

/// Registered experiments: (name, description, runner).
const EXPERIMENTS: &[(&str, &str, Runner)] = &[
    ("table1", "simulation parameters", tables::table1),
    ("table2", "application inventory", tables::table2),
    ("table3", "input graph inventory", tables::table3),
    ("table4", "P-OPT preprocessing cost", tables::table4),
    (
        "fig2",
        "baseline policies MPKI (PR)",
        fig02_baseline_mpki::run,
    ),
    ("fig4", "T-OPT MPKI (PR)", fig04_topt_mpki::run),
    ("fig7", "Rereference Matrix encodings", fig07_encodings::run),
    (
        "fig10",
        "main result: speedups + miss reductions",
        fig10_main::run,
    ),
    (
        "fig11",
        "graph-size scaling: P-OPT vs P-OPT-SE",
        fig11_graph_size::run,
    ),
    (
        "fig12",
        "prior work: GRASP and HATS-BDFS",
        fig12_prior_work::run,
    ),
    ("fig13", "CSR-segmenting interaction", fig13_tiling::run),
    ("fig14", "PB and PHI interaction", fig14_pb_phi::run),
    ("fig15", "quantization sensitivity", fig15_quantization::run),
    (
        "fig16",
        "LLC size/associativity sensitivity",
        fig16_llc_sensitivity::run,
    ),
    (
        "ext1",
        "extension: parallel execution (Sec V-F)",
        extensions::ext_parallel,
    ),
    (
        "ext2",
        "extension: matrix-driven prefetching (Sec VIII)",
        extensions::ext_prefetch,
    ),
    (
        "ext3",
        "extension: full policy zoo incl. SDBP + OPT",
        extensions::ext_zoo,
    ),
    (
        "ext4",
        "extension: context switches (Sec V-F)",
        extensions::ext_context_switch,
    ),
    (
        "ext5",
        "extension: P-OPT tie-break ablation",
        extensions::ext_tiebreak,
    ),
    (
        "ext6",
        "extension: huge-page requirement (Sec V-B)",
        extensions::ext_hugepage,
    ),
];

fn usage() {
    eprintln!("usage: experiments <exp>|all|list [--small] [--out DIR]");
    eprintln!("experiments:");
    for (name, desc, _) in EXPERIMENTS {
        eprintln!("  {name:8} {desc}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Standard;
    let mut out = PathBuf::from("results");
    let mut selected: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--small" => scale = Scale::Small,
            "--out" => match iter.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            name if selected.is_none() && !name.starts_with('-') => {
                selected = Some(name.to_string())
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(selected) = selected else {
        usage();
        return ExitCode::FAILURE;
    };
    if selected == "list" {
        usage();
        return ExitCode::SUCCESS;
    }
    // fig12a / fig12b are aliases for the combined fig12 module.
    let canonical = match selected.as_str() {
        "fig12a" | "fig12b" => "fig12",
        other => other,
    };
    let to_run: Vec<&(&str, &str, Runner)> = if canonical == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        match EXPERIMENTS.iter().find(|(name, _, _)| *name == canonical) {
            Some(e) => vec![e],
            None => {
                eprintln!("unknown experiment: {selected}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    };
    for (name, desc, runner) in to_run {
        eprintln!(">>> {name}: {desc} ({scale:?} scale)");
        let started = std::time::Instant::now();
        let tables = runner(scale);
        for (i, table) in tables.iter().enumerate() {
            let file = if tables.len() == 1 {
                (*name).to_string()
            } else {
                format!("{name}_{}", (b'a' + i as u8) as char)
            };
            if let Err(err) = table.emit(&out, &file) {
                eprintln!("failed to write {file}: {err}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("<<< {name} done in {:.1}s", started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
