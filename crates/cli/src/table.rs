//! Result presentation: aligned text tables and CSV output.

use std::io::Write;
use std::path::Path;

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Title shown above the table (e.g. "Figure 10: speedups over LRU").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (comma-separated, quoted only when needed).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the text form and writes `<dir>/<name>.txt` and `.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the files.
    pub fn emit(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        let text = self.render();
        print!("{text}");
        println!();
        std::fs::create_dir_all(dir)?;
        let mut txt = std::fs::File::create(dir.join(format!("{name}.txt")))?;
        txt.write_all(text.as_bytes())?;
        let mut csv = std::fs::File::create(dir.join(format!("{name}.csv")))?;
        csv.write_all(self.to_csv().as_bytes())?;
        Ok(())
    }
}

/// Formats a ratio as a percentage string ("12.3%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup ("1.23x").
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["graph", "mpki"]);
        t.row(vec!["dbp".into(), "61.20".into()]);
        t.row(vec!["uk02".into(), "7.1".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.lines().count() >= 4);
        let lines: Vec<&str> = text.lines().skip(1).collect();
        // All rendered rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1,2".into()]);
        assert_eq!(t.to_csv(), "a\n\"1,2\"\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_validated() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(speedup(1.234), "1.23x");
        assert_eq!(f2(4.31459), "4.31");
    }
}
