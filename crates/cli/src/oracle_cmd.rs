//! The `oracle` subcommand: run the differential-testing battery from the
//! command line.
//!
//! ```text
//! experiments oracle [--sets N] [--ways N] [--seed S] [--deep]
//!                    [--skip-kernels] [FILE...]
//! ```
//!
//! Three trace sources feed the same check battery (Belady bound and
//! exactness, Mattson/LRU exactness, stack inclusion, and the metamorphic
//! suites):
//!
//! * built-in adversarial generators (scans, ways±1 thrash loops, mixed
//!   streaming/reuse, random) across a geometry sweep;
//! * kernel traces over small synthetic graphs, with T-OPT and P-OPT
//!   joining the zoo (skippable with `--skip-kernels`);
//! * any recorded `POPTTRC2` artifacts given as positional `FILE`s,
//!   decoded once and checked at the `--sets`/`--ways` geometry.
//!
//! The report is deterministic for fixed inputs; the exit code is nonzero
//! iff any invariant was violated, so the CI oracle job can gate on it.

use popt_graph::generators;
use popt_kernels::App;
use popt_oracle::{gen, graph_aware_policies, NamedPolicy, OracleReport, TraceCase};
use popt_trace::RecordingSink;
use popt_tracestore::replay_any;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: experiments oracle [--sets N] [--ways N] [--seed S] [--deep]\n\
         \u{20}                         [--skip-kernels] [FILE...]\n\
         checks the policy zoo against Mattson/MIN reference models on\n\
         adversarial traces, kernel traces, and recorded POPTTRC2 FILEs"
    );
}

struct OracleOptions {
    /// Geometry for stored-trace cases.
    sets: usize,
    ways: usize,
    /// Seed for the adversarial batch (CI's randomized smoke varies it).
    seed: u64,
    /// Wider geometry sweep and more seeds.
    deep: bool,
    /// Skip the kernel-trace section (matrix builds dominate its runtime).
    skip_kernels: bool,
    /// Recorded POPTTRC2 artifacts to check.
    traces: Vec<PathBuf>,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            sets: 8,
            ways: 8,
            seed: 0x0BAD_5EED_0001,
            deep: false,
            skip_kernels: false,
            traces: Vec::new(),
        }
    }
}

fn parse_oracle_args(args: Vec<String>) -> Result<Option<OracleOptions>, String> {
    let mut opts = OracleOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--sets" => {
                let v = iter.next().ok_or("--sets needs a positive integer")?;
                opts.sets = v
                    .parse()
                    .ok()
                    .filter(|n: &usize| *n > 0)
                    .ok_or_else(|| format!("bad --sets value: {v}"))?;
            }
            "--ways" => {
                let v = iter.next().ok_or("--ways needs a positive integer")?;
                opts.ways = v
                    .parse()
                    .ok()
                    .filter(|n: &usize| *n > 0)
                    .ok_or_else(|| format!("bad --ways value: {v}"))?;
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed needs an integer")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--deep" => opts.deep = true,
            "--skip-kernels" => opts.skip_kernels = true,
            "--help" | "-h" => return Ok(None),
            file if !file.starts_with('-') => opts.traces.push(PathBuf::from(file)),
            other => return Err(format!("unknown oracle argument: {other}")),
        }
    }
    Ok(Some(opts))
}

/// Checks one recorded trace file. Stored traces carry no graph, so only
/// the graph-free zoo applies; region classes default to streaming.
fn check_stored_trace(
    report: &mut OracleReport,
    zoo: &[NamedPolicy],
    path: &Path,
    opts: &OracleOptions,
) -> Result<(), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut rec = RecordingSink::new();
    replay_any(file, &mut rec).map_err(|e| format!("{}: {e}", path.display()))?;
    let name = path.file_name().map_or_else(
        || path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    let case = TraceCase::from_events(&name, opts.sets, opts.ways, rec.events(), None);
    if case.num_accesses() == 0 {
        return Err(format!("{}: trace contains no accesses", path.display()));
    }
    report.check_case(&case, zoo);
    Ok(())
}

fn run_oracle(opts: &OracleOptions) -> Result<OracleReport, String> {
    let zoo = NamedPolicy::zoo();
    let mut report = OracleReport::new();

    // Adversarial synthetic batch.
    let geometries: &[(usize, usize)] = if opts.deep {
        &[(1, 2), (2, 4), (4, 8), (8, 16)]
    } else {
        &[(2, 4), (4, 8)]
    };
    let rounds = if opts.deep { 4 } else { 1 };
    for &(sets, ways) in geometries {
        for round in 0..rounds {
            for case in gen::adversarial_cases(sets, ways, opts.seed.wrapping_add(round)) {
                report.check_case(&case, &zoo);
            }
        }
    }

    // Kernel traces over synthetic graphs, with the graph-aware policies.
    if !opts.skip_kernels {
        let runs = [
            (App::Pagerank, generators::uniform_random(96, 480, 11)),
            (App::Components, generators::mesh(8, 2, 12)),
            (App::Mis, generators::preferential_attachment(80, 3, 13)),
        ];
        for (app, g) in runs {
            let plan = app.plan(&g);
            let mut sink = RecordingSink::new();
            app.trace(&g, &plan, &mut sink);
            let name = format!("kernel/{app}");
            let case = TraceCase::from_events(&name, 8, 8, sink.events(), Some(&plan.space));
            let mut policies = NamedPolicy::zoo();
            policies.extend(graph_aware_policies(app, &g));
            report.check_case(&case, &policies);
        }
    }

    // Recorded artifacts.
    for path in &opts.traces {
        check_stored_trace(&mut report, &zoo, path, opts)?;
    }
    Ok(report)
}

/// Entry point for `experiments oracle ...`.
pub fn oracle_main(args: Vec<String>) -> ExitCode {
    let opts = match parse_oracle_args(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            usage();
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    match run_oracle(&opts) {
        Ok(report) => {
            print!("{}", report.render());
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("oracle failed: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_battery_passes_and_renders_deterministically() {
        let opts = OracleOptions {
            skip_kernels: true,
            ..OracleOptions::default()
        };
        let a = run_oracle(&opts).expect("battery runs");
        let b = run_oracle(&opts).expect("battery runs");
        assert!(a.ok(), "{}", a.render());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn seed_changes_the_cases_but_not_the_verdict() {
        let mut opts = OracleOptions {
            skip_kernels: true,
            ..OracleOptions::default()
        };
        opts.seed = 42;
        let r = run_oracle(&opts).expect("battery runs");
        assert!(r.ok(), "{}", r.render());
    }

    #[test]
    fn arg_parsing_covers_the_flag_vocabulary() {
        let opts = parse_oracle_args(
            [
                "--sets", "4", "--ways", "2", "--seed", "7", "--deep", "a.trc",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        )
        .expect("valid args")
        .expect("not help");
        assert_eq!((opts.sets, opts.ways, opts.seed), (4, 2, 7));
        assert!(opts.deep);
        assert_eq!(opts.traces, vec![PathBuf::from("a.trc")]);
        assert!(parse_oracle_args(vec!["--help".into()])
            .expect("ok")
            .is_none());
        assert!(parse_oracle_args(vec!["--bogus".into()]).is_err());
    }

    #[test]
    fn missing_trace_file_is_a_clean_error() {
        let opts = OracleOptions {
            skip_kernels: true,
            traces: vec![PathBuf::from("/nonexistent/never.trc")],
            ..OracleOptions::default()
        };
        // The synthetic battery still runs; the stored-trace pass fails.
        let err = run_oracle(&opts).expect_err("missing file must error");
        assert!(err.contains("never.trc"), "{err}");
    }
}
