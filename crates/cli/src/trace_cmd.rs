//! The `trace` subcommand: record, inspect and replay `POPTTRC2` trace
//! artifacts outside the sweep pipeline.
//!
//! ```text
//! experiments trace record --app pr --graph urand [--scale S] --out FILE
//! experiments trace replay FILE --app pr --graph urand [--scale S] [--policies lru,drrip,popt]
//! experiments trace info FILE [--verify]
//! ```
//!
//! `record` executes one kernel over one suite graph and writes the
//! compressed event stream; `replay` drives any number of policy
//! hierarchies from that file in a *single* decode pass (a
//! [`FanoutSink`] fan-out — the kernel never re-executes); `info` prints
//! the footer index without decoding chunk payloads, and `--verify`
//! additionally decodes every chunk against its checksum.

use crate::runner::{policy_hierarchy_cached, PolicySpec};
use crate::Scale;
use popt_graph::suite::{suite_graph, SuiteGraph};
use popt_graph::Graph;
use popt_kernels::App;
use popt_sim::{Hierarchy, PolicyKind};
use popt_tracestore::{replay_any, trace_info, verify, ChunkWriter, FanoutSink};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: experiments trace record --app A --graph G [--scale S] --out FILE\n\
         \u{20}      experiments trace replay FILE --app A --graph G [--scale S] [--policies P,P,..]\n\
         \u{20}      experiments trace info FILE [--verify]\n\
         apps:     pr cc pr-delta radii mis\n\
         graphs:   dbp uk02 kron urand hbubl\n\
         policies: lru bit-plru random srrip brrip drrip ship-pc ship-mem\n\
         \u{20}         hawkeye sdbp leeway topt popt (belady needs two passes: use sweep)"
    );
}

fn parse_app(s: &str) -> Option<App> {
    App::ALL.into_iter().find(|a| a.name() == s)
}

fn parse_suite_graph(s: &str) -> Option<SuiteGraph> {
    SuiteGraph::ALL.into_iter().find(|g| g.name() == s)
}

fn parse_policy(s: &str) -> Result<PolicySpec, String> {
    let norm: String = s
        .to_ascii_lowercase()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    let kind = match norm.as_str() {
        "lru" => PolicyKind::Lru,
        "bitplru" => PolicyKind::BitPlru,
        "random" => PolicyKind::Random,
        "srrip" => PolicyKind::Srrip,
        "brrip" => PolicyKind::Brrip,
        "drrip" => PolicyKind::Drrip,
        "shippc" => PolicyKind::ShipPc,
        "shipmem" => PolicyKind::ShipMem,
        "hawkeye" => PolicyKind::Hawkeye,
        "sdbp" => PolicyKind::Sdbp,
        "leeway" => PolicyKind::Leeway,
        "topt" => return Ok(PolicySpec::Topt),
        "popt" => return Ok(PolicySpec::popt_default()),
        "opt" | "belady" => {
            return Err(
                "Belady is two-pass (it is built from a recorded LLC stream); \
                 it cannot run from a replay fan-out"
                    .to_string(),
            )
        }
        _ => return Err(format!("unknown policy: {s}")),
    };
    Ok(PolicySpec::Baseline(kind))
}

/// Shared `--app/--graph/--scale` selection of the record/replay verbs.
struct Workload {
    app: App,
    which: SuiteGraph,
    scale: Scale,
}

impl Workload {
    fn materialize(&self) -> Graph {
        suite_graph(self.which, self.scale.suite())
    }

    /// The same descriptor string the sweep pipeline embeds in its trace
    /// artifacts, so a hand-recorded file is indistinguishable from a
    /// cache-recorded one.
    fn descriptor(&self) -> String {
        format!(
            "trace/v2/suite/v1/{}/{}/{}",
            self.which,
            self.scale.name(),
            self.app.name()
        )
    }
}

/// Folds one `--app/--graph/--scale` flag into the partial selection.
/// Returns `Ok(true)` when the flag was consumed.
fn parse_workload_flag(
    arg: &str,
    iter: &mut std::vec::IntoIter<String>,
    app: &mut Option<App>,
    which: &mut Option<SuiteGraph>,
    scale: &mut Scale,
) -> Result<bool, String> {
    match arg {
        "--app" => {
            let v = iter.next().ok_or("--app needs a kernel name")?;
            *app = Some(parse_app(&v).ok_or_else(|| format!("unknown app: {v}"))?);
        }
        "--graph" => {
            let v = iter.next().ok_or("--graph needs a suite graph name")?;
            *which = Some(parse_suite_graph(&v).ok_or_else(|| format!("unknown graph: {v}"))?);
        }
        "--scale" => {
            let v = iter.next().ok_or("--scale needs tiny|small|standard")?;
            *scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale: {v}"))?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn record_main(args: Vec<String>) -> Result<(), String> {
    let mut app = None;
    let mut which = None;
    let mut scale = Scale::Tiny;
    let mut out: Option<PathBuf> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if parse_workload_flag(&arg, &mut iter, &mut app, &mut which, &mut scale)? {
            continue;
        }
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(iter.next().ok_or("--out needs a file path")?)),
            other => return Err(format!("unknown trace record argument: {other}")),
        }
    }
    let wl = Workload {
        app: app.ok_or("trace record requires --app")?,
        which: which.ok_or("trace record requires --graph")?,
        scale,
    };
    let out = out.ok_or("trace record requires --out")?;
    let g = wl.materialize();
    let plan = wl.app.plan(&g);
    let file = std::fs::File::create(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    let mut writer =
        ChunkWriter::create(file, &plan.space, &wl.descriptor()).map_err(|e| e.to_string())?;
    wl.app.trace(&g, &plan, &mut writer);
    let (_, summary) = writer.finish().map_err(|e| e.to_string())?;
    println!(
        "recorded {}: {} events in {} chunks, {} bytes (raw v1 {} bytes, {:.2}x smaller)",
        out.display(),
        summary.events,
        summary.chunks,
        summary.v2_bytes,
        summary.v1_bytes,
        summary.ratio(),
    );
    Ok(())
}

fn replay_main(args: Vec<String>) -> Result<(), String> {
    let mut app = None;
    let mut which = None;
    let mut scale = Scale::Tiny;
    let mut file: Option<PathBuf> = None;
    let mut policies = vec!["lru".to_string(), "drrip".to_string(), "popt".to_string()];
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if parse_workload_flag(&arg, &mut iter, &mut app, &mut which, &mut scale)? {
            continue;
        }
        match arg.as_str() {
            "--policies" => {
                let v = iter
                    .next()
                    .ok_or("--policies needs a comma-separated list")?;
                policies = v.split(',').map(str::to_string).collect();
            }
            name if !name.starts_with('-') && file.is_none() => file = Some(PathBuf::from(name)),
            other => return Err(format!("unknown trace replay argument: {other}")),
        }
    }
    let wl = Workload {
        app: app.ok_or("trace replay requires --app (to rebuild policy inputs)")?,
        which: which.ok_or("trace replay requires --graph")?,
        scale,
    };
    let file = file.ok_or("trace replay requires a trace file")?;
    let specs = policies
        .iter()
        .map(|p| parse_policy(p))
        .collect::<Result<Vec<_>, _>>()?;
    if specs.is_empty() {
        return Err("trace replay needs at least one policy".to_string());
    }
    // Policy inputs (T-OPT transposes, P-OPT matrices) come from the graph;
    // the *event stream* comes exclusively from the file.
    let g = wl.materialize();
    let plan = wl.app.plan(&g);
    let cfg = wl.scale.config();
    let mut fanout: FanoutSink<Hierarchy> = FanoutSink::new(Vec::new());
    for spec in &specs {
        fanout.push(policy_hierarchy_cached(wl.app, &g, &cfg, &plan, spec, None));
    }
    let reader = std::fs::File::open(&file).map_err(|e| format!("{}: {e}", file.display()))?;
    let stats = replay_any(std::io::BufReader::new(reader), &mut fanout)
        .map_err(|e| format!("{}: {e}", file.display()))?;
    println!(
        "replayed {} events ({} chunks, one decode pass) into {} policies:",
        stats.events,
        stats.chunks_decoded,
        specs.len()
    );
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "policy", "llc_hits", "llc_misses", "miss%"
    );
    for (spec, hierarchy) in specs.iter().zip(fanout.into_inner()) {
        let s = hierarchy.stats();
        let total = s.llc.hits + s.llc.misses;
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * s.llc.misses as f64 / total as f64
        };
        println!(
            "{:<12} {:>12} {:>12} {:>7.2}%",
            spec.label(),
            s.llc.hits,
            s.llc.misses,
            pct
        );
    }
    Ok(())
}

fn info_main(args: Vec<String>) -> Result<(), String> {
    let mut file: Option<PathBuf> = None;
    let mut check = false;
    for arg in args {
        match arg.as_str() {
            "--verify" => check = true,
            name if !name.starts_with('-') && file.is_none() => file = Some(PathBuf::from(name)),
            other => return Err(format!("unknown trace info argument: {other}")),
        }
    }
    let file = file.ok_or("trace info requires a trace file")?;
    let info = trace_info(&file).map_err(|e| format!("{}: {e}", file.display()))?;
    println!("format:   POPTTRC2");
    println!("meta:     {}", info.meta);
    println!("regions:  {}", info.regions);
    println!("events:   {}", info.events);
    println!("chunks:   {}", info.chunks.len());
    println!("v2 bytes: {}", info.file_bytes);
    println!("v1 bytes: {} ({:.2}x smaller)", info.v1_bytes, info.ratio());
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "chunk", "offset", "events", "payload", "first_line", "last_line"
    );
    for (i, c) in info.chunks.iter().enumerate() {
        println!(
            "{i:>6} {:>12} {:>10} {:>12} {:>12} {:>12}",
            c.offset, c.events, c.payload_len, c.first_line, c.last_line
        );
    }
    if check {
        let stats = verify(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        println!(
            "verified: {} events across {} chunks, all checksums OK",
            stats.events, stats.chunks_decoded
        );
    }
    Ok(())
}

/// Entry point for `experiments trace ...`.
pub fn trace_main(mut args: Vec<String>) -> ExitCode {
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let verb = args.remove(0);
    let result = match verb.as_str() {
        "record" => record_main(args),
        "replay" => replay_main(args),
        "info" => info_main(args),
        "--help" | "-h" => {
            usage();
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown trace verb: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_flags_parse_and_reject() {
        let mut app = None;
        let mut which = None;
        let mut scale = Scale::Tiny;
        let args: Vec<String> = ["--app", "cc", "--graph", "kron", "--scale", "small"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            assert!(
                parse_workload_flag(&arg, &mut iter, &mut app, &mut which, &mut scale).unwrap()
            );
        }
        assert_eq!(app, Some(App::Components));
        assert_eq!(which, Some(SuiteGraph::Kron));
        assert_eq!(scale, Scale::Small);
        assert!(parse_app("nope").is_none());
        assert!(parse_suite_graph("nope").is_none());
    }

    #[test]
    fn policy_parsing_covers_the_zoo_and_rejects_belady() {
        assert!(matches!(
            parse_policy("ship-pc"),
            Ok(PolicySpec::Baseline(PolicyKind::ShipPc))
        ));
        assert!(matches!(parse_policy("TOPT"), Ok(PolicySpec::Topt)));
        assert!(matches!(parse_policy("popt"), Ok(PolicySpec::Popt { .. })));
        assert!(parse_policy("belady").is_err());
        assert!(parse_policy("opt").is_err());
        assert!(parse_policy("what").is_err());
    }

    #[test]
    fn record_then_info_then_replay_round_trips() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/popt-cli-test/trace-cmd");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("pr-urand.trc");
        record_main(
            ["--app", "pr", "--graph", "urand", "--out"]
                .iter()
                .map(|s| s.to_string())
                .chain([out.display().to_string()])
                .collect(),
        )
        .unwrap();
        info_main(vec![out.display().to_string(), "--verify".to_string()]).unwrap();
        replay_main(
            ["--app", "pr", "--graph", "urand", "--policies", "lru,drrip"]
                .iter()
                .map(|s| s.to_string())
                .chain([out.display().to_string()])
                .collect(),
        )
        .unwrap();
        // The replayed stats match a direct kernel-driven simulation.
        let g = suite_graph(SuiteGraph::Urand, Scale::Tiny.suite());
        let direct = crate::runner::simulate(
            App::Pagerank,
            &g,
            &Scale::Tiny.config(),
            &PolicySpec::Baseline(PolicyKind::Lru),
        );
        let plan = App::Pagerank.plan(&g);
        let mut fanout: FanoutSink<Hierarchy> = FanoutSink::new(Vec::new());
        fanout.push(policy_hierarchy_cached(
            App::Pagerank,
            &g,
            &Scale::Tiny.config(),
            &plan,
            &PolicySpec::Baseline(PolicyKind::Lru),
            None,
        ));
        let reader = std::io::BufReader::new(std::fs::File::open(&out).unwrap());
        replay_any(reader, &mut fanout).unwrap();
        let replayed = fanout.into_inner().pop().unwrap().stats();
        assert_eq!(replayed, direct, "replay is bit-identical to execution");
    }
}
