//! `graphgen` — generate, convert and inspect graph files.
//!
//! ```text
//! graphgen gen   <kind> <out.bin> [--scale N | --vertices N] [--edges M] [--seed S]
//! graphgen conv  <in> <out.bin>            # edge list / MatrixMarket / binary -> binary
//! graphgen stats <path>                    # Table III-style summary
//! graphgen trace <path> <app> <out.trc>    # record an app's access trace
//! graphgen reref <path> <out.rrm> [--pull|--push] [--bits N]
//!                                           # precompute a Rereference Matrix
//! ```
//!
//! `kind` ∈ {urand, kron, powerlaw, community, mesh}. The binary format is
//! `popt_graph::io::write_binary`; traces use `popt_trace::file`.

use popt_graph::{generators, io, stats, Graph};
use popt_kernels::App;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  graphgen gen <urand|kron|powerlaw|community|mesh> <out> \
         [--scale N|--vertices N] [--edges M] [--seed S]\n  graphgen conv <in> <out>\n  \
         graphgen stats <path>\n  graphgen trace <path> <pr|cc|pr-delta|radii|mis> <out>\n  \
         graphgen reref <path> <out.rrm> [--push] [--bits N]"
    );
    ExitCode::FAILURE
}

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn generate(kind: &str, args: &[String]) -> Option<Graph> {
    let seed = parse_flag(args, "--seed").unwrap_or(42);
    let scale = parse_flag(args, "--scale").unwrap_or(16) as u32;
    let vertices = parse_flag(args, "--vertices").unwrap_or(1 << scale) as usize;
    let edges = parse_flag(args, "--edges").unwrap_or(4 * vertices as u64) as usize;
    match kind {
        "urand" => Some(generators::uniform_random(vertices, edges, seed)),
        "kron" => Some(generators::rmat(
            scale,
            edges,
            generators::RmatParams::KRONECKER,
            seed,
        )),
        "powerlaw" => Some(generators::rmat(
            scale,
            edges,
            generators::RmatParams::POWER_LAW,
            seed,
        )),
        "community" => {
            let communities = parse_flag(args, "--communities").unwrap_or(64) as usize;
            Some(generators::community(
                vertices,
                edges,
                communities,
                0.95,
                seed,
            ))
        }
        "mesh" => {
            let side = (vertices as f64).sqrt() as usize;
            Some(generators::mesh(side.max(2), 0, seed))
        }
        _ => None,
    }
}

fn print_stats(g: &Graph) {
    let s = stats::graph_stats(g);
    println!("vertices      {}", s.num_vertices);
    println!("edges         {}", s.num_edges);
    println!("avg degree    {:.2}", s.average_degree);
    println!("max out-deg   {}", s.max_out_degree);
    println!("max in-deg    {}", s.max_in_degree);
    println!("degree gini   {:.3}", s.degree_gini);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") if args.len() >= 3 => {
            let Some(g) = generate(&args[1], &args[3..]) else {
                return usage();
            };
            let file = match std::fs::File::create(&args[2]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args[2]);
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = io::write_binary(&g, file) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            print_stats(&g);
            ExitCode::SUCCESS
        }
        Some("conv") if args.len() == 3 => {
            let g = match io::read_path(&args[1]) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let file = match std::fs::File::create(&args[2]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args[2]);
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = io::write_binary(&g, file) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            print_stats(&g);
            ExitCode::SUCCESS
        }
        Some("stats") if args.len() == 2 => match io::read_path(&args[1]) {
            Ok(g) => {
                print_stats(&g);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot read {}: {e}", args[1]);
                ExitCode::FAILURE
            }
        },
        Some("trace") if args.len() == 4 => {
            let g = match io::read_path(&args[1]) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let app = match args[2].as_str() {
                "pr" => App::Pagerank,
                "cc" => App::Components,
                "pr-delta" => App::PagerankDelta,
                "radii" => App::Radii,
                "mis" => App::Mis,
                other => {
                    eprintln!("unknown app {other}");
                    return ExitCode::FAILURE;
                }
            };
            let file = match std::fs::File::create(&args[3]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args[3]);
                    return ExitCode::FAILURE;
                }
            };
            let mut writer = match popt_trace::file::TraceWriter::new(file) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("cannot start trace: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let plan = app.plan(&g);
            app.trace(&g, &plan, &mut writer);
            let events = writer.events_written();
            if let Err(e) = writer.finish() {
                eprintln!("trace flush failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("{events} events written to {}", args[3]);
            ExitCode::SUCCESS
        }
        Some("reref") if args.len() >= 3 => {
            // The paper's amortization story (Section VII-D): the matrix is
            // algorithm agnostic — build it once per graph and reuse it
            // across applications.
            let g = match io::read_path(&args[1]) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let bits = parse_flag(&args[3..], "--bits").unwrap_or(8) as u8;
            let push = args.iter().any(|a| a == "--push");
            let transpose = if push { g.in_csr() } else { g.out_csr() };
            let quant = popt_core::Quantization::new(bits);
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let (matrix, report) = popt_core::preprocess::timed_build(
                transpose,
                16,
                1,
                quant,
                popt_core::Encoding::InterIntra,
                threads,
            );
            let file = match std::fs::File::create(&args[2]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args[2]);
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = popt_core::serialize::write_matrix(&matrix, file) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "built in {:.1} ms ({} threads): {} lines x {} epochs, column {} KB, total {} KB",
                report.duration.as_secs_f64() * 1000.0,
                report.threads,
                matrix.num_lines(),
                matrix.num_epochs(),
                matrix.column_bytes() / 1024,
                matrix.total_bytes() / 1024,
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
