//! `tracesim` — replay a recorded trace file (see `graphgen trace` and
//! `experiments trace record`) through the cache hierarchy under a chosen
//! baseline policy, printing hierarchy statistics. Accepts both the raw
//! `POPTTRC1` format and the compressed chunked `POPTTRC2` format.
//! Completes the decoupled capture/simulate workflow of Pin-style studies;
//! runs with `--policy opt` perform the two-pass Belady replay
//! automatically.
//!
//! ```text
//! tracesim <trace.trc> [--policy NAME] [--llc BYTES] [--ways N] [--cores N]
//! ```

use popt_sim::policies::Belady;
use popt_sim::{CacheConfig, Hierarchy, HierarchyConfig, PolicyKind};
use std::process::ExitCode;

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with('-')) else {
        eprintln!(
            "usage: tracesim <trace.trc> [--policy lru|drrip|ship-pc|ship-mem|hawkeye|sdbp|leeway|srrip|brrip|random|opt] [--llc BYTES] [--ways N] [--cores N]"
        );
        return ExitCode::FAILURE;
    };
    let policy_name = parse_flag(&args, "--policy").unwrap_or_else(|| "drrip".to_string());
    let llc_bytes: usize = parse_flag(&args, "--llc")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256 * 1024);
    let ways: usize = parse_flag(&args, "--ways")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let cores: usize = parse_flag(&args, "--cores")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let mut cfg = HierarchyConfig::scaled_table1();
    cfg.llc = CacheConfig::new(llc_bytes, ways);

    let kind = match policy_name.as_str() {
        "lru" => Some(PolicyKind::Lru),
        "drrip" => Some(PolicyKind::Drrip),
        "ship-pc" => Some(PolicyKind::ShipPc),
        "ship-mem" => Some(PolicyKind::ShipMem),
        "hawkeye" => Some(PolicyKind::Hawkeye),
        "sdbp" => Some(PolicyKind::Sdbp),
        "leeway" => Some(PolicyKind::Leeway),
        "srrip" => Some(PolicyKind::Srrip),
        "brrip" => Some(PolicyKind::Brrip),
        "random" => Some(PolicyKind::Random),
        "opt" => None,
        other => {
            eprintln!("unknown policy: {other}");
            return ExitCode::FAILURE;
        }
    };

    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let stats = match kind {
        Some(kind) => {
            let mut h = Hierarchy::with_cores(&cfg, cores, |s, w| kind.build(s, w));
            if let Err(e) = popt_tracestore::replay_any(&bytes[..], &mut h) {
                eprintln!("replay failed: {e}");
                return ExitCode::FAILURE;
            }
            h.stats()
        }
        None => {
            // Two-pass Belady: record the LLC stream, then replay.
            if cores != 1 {
                eprintln!("--policy opt requires --cores 1");
                return ExitCode::FAILURE;
            }
            let mut recorder = Hierarchy::new(&cfg, |s, w| PolicyKind::Lru.build(s, w));
            recorder.start_recording_llc();
            if let Err(e) = popt_tracestore::replay_any(&bytes[..], &mut recorder) {
                eprintln!("replay failed: {e}");
                return ExitCode::FAILURE;
            }
            let llc_stream = recorder.take_llc_recording();
            let mut h =
                Hierarchy::new(&cfg, |s, w| Box::new(Belady::from_trace(s, w, &llc_stream)));
            if let Err(e) = popt_tracestore::replay_any(&bytes[..], &mut h) {
                eprintln!("replay failed: {e}");
                return ExitCode::FAILURE;
            }
            h.stats()
        }
    };

    println!("policy        {policy_name}");
    println!("llc           {} KB x {} ways", llc_bytes / 1024, ways);
    println!("instructions  {}", stats.instructions);
    for (name, level) in [("l1", &stats.l1), ("l2", &stats.l2), ("llc", &stats.llc)] {
        println!(
            "{name:4} accesses {:>10}  misses {:>10}  rate {:5.1}%",
            level.demand_accesses(),
            level.misses,
            level.miss_rate() * 100.0
        );
    }
    println!("llc mpki      {:.2}", stats.llc_mpki());
    println!("dram traffic  {} lines", stats.dram_transfers());
    ExitCode::SUCCESS
}
