//! Acceptance tests for the sweep harness: parallel determinism, warm-cache
//! reuse, and kill/resume semantics.

use popt_cli::sweep::{run_sweep, SweepOptions};
use popt_cli::Scale;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/popt-cli-test/sweep-accept")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(out: PathBuf, jobs: usize, only: &[&str]) -> SweepOptions {
    SweepOptions {
        scale: Scale::Tiny,
        jobs,
        out,
        only: only.iter().map(|s| s.to_string()).collect(),
        inject_fail: None,
        share_traces: true,
    }
}

/// Every emitted result file (CSV and rendered text), keyed by file name.
fn result_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("output dir exists") {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        if (name.ends_with(".csv") || name.ends_with(".txt")) && !name.starts_with("sweep_report") {
            out.insert(name, std::fs::read(entry.path()).unwrap());
        }
    }
    out
}

#[test]
fn parallel_sweep_output_is_byte_identical_to_serial() {
    // fig2 exercises plain sim cells, fig7 builds matrices under several
    // encodings (so the artifact cache is on the hot path).
    let selection = ["fig2", "fig7"];
    let serial_dir = scratch("det-serial");
    let parallel_dir = scratch("det-parallel");
    let serial = run_sweep(&opts(serial_dir.clone(), 1, &selection)).unwrap();
    let parallel = run_sweep(&opts(parallel_dir.clone(), 4, &selection)).unwrap();
    assert!(serial.executed > 0);
    assert_eq!(serial.executed, parallel.executed);
    let a = result_files(&serial_dir);
    let b = result_files(&parallel_dir);
    assert!(!a.is_empty(), "sweep emitted result files");
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "same set of result files"
    );
    for (name, bytes) in &a {
        assert_eq!(bytes, &b[name], "{name} must be byte-identical at --jobs 4");
    }
    // The canonicalized manifests are byte-identical too: completion order
    // never leaks into the journal.
    assert_eq!(
        std::fs::read(serial_dir.join("sweep_manifest.jsonl")).unwrap(),
        std::fs::read(parallel_dir.join("sweep_manifest.jsonl")).unwrap()
    );
}

#[test]
fn warm_cache_rerun_resimulates_and_rebuilds_nothing() {
    let dir = scratch("warm");
    let selection = ["fig2", "fig7"];
    let first = run_sweep(&opts(dir.clone(), 2, &selection)).unwrap();
    assert!(first.executed > 0);
    assert_eq!(first.resumed, 0);
    assert!(first.counters.matrix_builds > 0, "cold run builds matrices");
    let manifest_after_first = std::fs::read(dir.join("sweep_manifest.jsonl")).unwrap();
    let second = run_sweep(&opts(dir.clone(), 2, &selection)).unwrap();
    assert_eq!(second.executed, 0, "warm run re-simulates nothing");
    assert_eq!(second.resumed, first.executed);
    assert_eq!(second.counters.graph_builds, 0, "no graph regeneration");
    assert_eq!(second.counters.matrix_builds, 0, "no matrix rebuilds");
    assert_eq!(
        std::fs::read(dir.join("sweep_manifest.jsonl")).unwrap(),
        manifest_after_first,
        "manifest is stable across warm re-runs"
    );
}

#[test]
fn failing_cells_fail_the_sweep_but_spare_the_rest() {
    let dir = scratch("inject-fail");
    // Break only fig2's urand cells; fig2's other cells and all of fig4
    // must still complete and journal.
    let mut broken = opts(dir.clone(), 2, &["fig2", "fig4"]);
    broken.inject_fail = Some("fig2/tiny/urand".to_string());
    let summary = run_sweep(&broken).unwrap();
    assert_eq!(summary.failed, vec!["fig2".to_string()]);
    assert!(summary.executed > 0, "healthy cells still simulated");
    let files = result_files(&dir);
    assert!(
        files.keys().any(|n| n.starts_with("fig4")),
        "fig4 tables emitted"
    );
    assert!(
        !files.keys().any(|n| n.starts_with("fig2")),
        "failed experiment withholds its tables"
    );
    let json = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
    assert!(json.contains("\"failed\":[\"fig2\"]"), "{json}");
    // Remove the fault: the healthy cells replay from the journal and only
    // the previously failing cells simulate.
    let fixed = run_sweep(&opts(dir.clone(), 2, &["fig2", "fig4"])).unwrap();
    assert!(fixed.failed.is_empty());
    assert!(fixed.executed > 0, "previously failing cells now simulate");
    assert!(fixed.resumed > 0, "healthy cells replay from the journal");
    assert_eq!(
        fixed.executed + fixed.resumed,
        summary.executed + summary.resumed + fixed.executed,
        "no healthy cell was re-simulated"
    );
    let files = result_files(&dir);
    assert!(
        files.keys().any(|n| n.starts_with("fig2")),
        "fig2 tables emitted after the fix"
    );
    let json = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
    assert!(json.contains("\"failed\":[]"), "{json}");
}

#[test]
fn interrupted_sweep_resumes_only_unfinished_cells() {
    // A first run that only gets through fig2 stands in for a killed
    // sweep; the journal it leaves behind must carry the full restart.
    let dir = scratch("resume");
    let partial = run_sweep(&opts(dir.clone(), 2, &["fig2"])).unwrap();
    assert!(partial.executed > 0);
    let resumed = run_sweep(&opts(dir.clone(), 2, &["fig2", "fig4"])).unwrap();
    assert_eq!(
        resumed.resumed, partial.executed,
        "every fig2 cell replays from the journal"
    );
    assert!(resumed.executed > 0, "fig4 cells still simulate");
    // And the combined run is now fully journaled: a third run is all
    // replay.
    let third = run_sweep(&opts(dir, 2, &["fig2", "fig4"])).unwrap();
    assert_eq!(third.executed, 0);
    assert_eq!(third.resumed, partial.executed + resumed.executed);
}
