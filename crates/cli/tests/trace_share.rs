//! Acceptance tests for record-once / replay-many trace sharing: sweeps
//! with sharing on must emit byte-identical result files to sweeps with
//! sharing off, at any `--jobs` level, including across kill/resume.

use popt_cli::sweep::{run_sweep, SweepOptions};
use popt_cli::Scale;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/popt-cli-test/trace-share")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(out: PathBuf, jobs: usize, share_traces: bool, only: &[&str]) -> SweepOptions {
    SweepOptions {
        scale: Scale::Tiny,
        jobs,
        out,
        only: only.iter().map(|s| s.to_string()).collect(),
        inject_fail: None,
        share_traces,
    }
}

/// Every emitted result file (CSV and rendered text), keyed by file name.
fn result_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("output dir exists") {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        if (name.ends_with(".csv") || name.ends_with(".txt")) && !name.starts_with("sweep_report") {
            out.insert(name, std::fs::read(entry.path()).unwrap());
        }
    }
    out
}

#[test]
fn shared_sweep_is_byte_identical_to_unshared_at_any_jobs() {
    // fig2 runs many policies over the same (graph, kernel) pairs — the
    // sharing hot path. The unshared serial run is the ground truth.
    let selection = ["fig2"];
    let unshared_dir = scratch("unshared");
    let shared_serial_dir = scratch("shared-serial");
    let shared_parallel_dir = scratch("shared-parallel");
    let unshared = run_sweep(&opts(unshared_dir.clone(), 1, false, &selection)).unwrap();
    let shared_serial = run_sweep(&opts(shared_serial_dir.clone(), 1, true, &selection)).unwrap();
    let shared_parallel =
        run_sweep(&opts(shared_parallel_dir.clone(), 4, true, &selection)).unwrap();

    assert_eq!(unshared.counters.trace_builds, 0, "sharing off: no store");
    assert_eq!(unshared.counters.trace_hits, 0);
    assert!(
        shared_serial.counters.trace_builds > 0,
        "sharing on: kernels record"
    );
    assert!(
        shared_serial.counters.trace_hits > 0,
        "sharing on: sibling cells replay"
    );
    assert!(
        shared_serial.traces.ratio() > 1.0,
        "recorded artifacts compress"
    );
    assert_eq!(shared_parallel.executed, unshared.executed);
    assert!(shared_parallel.counters.trace_hits > 0);

    let truth = result_files(&unshared_dir);
    assert!(!truth.is_empty(), "sweep emitted result files");
    for (dir, label) in [
        (&shared_serial_dir, "serial shared"),
        (&shared_parallel_dir, "parallel shared"),
    ] {
        let got = result_files(dir);
        assert_eq!(
            truth.keys().collect::<Vec<_>>(),
            got.keys().collect::<Vec<_>>(),
            "{label}: same set of result files"
        );
        for (name, bytes) in &truth {
            assert_eq!(bytes, &got[name], "{label}: {name} must be byte-identical");
        }
    }
    // The journals agree too: replayed events drive identical stats.
    assert_eq!(
        std::fs::read(unshared_dir.join("sweep_manifest.jsonl")).unwrap(),
        std::fs::read(shared_parallel_dir.join("sweep_manifest.jsonl")).unwrap()
    );
}

#[test]
fn killed_shared_sweep_resumes_onto_identical_outputs() {
    // A sweep that only got through fig2 stands in for a killed run; the
    // restart finishes fig4 against the already-recorded traces.
    let reference_dir = scratch("resume-reference");
    run_sweep(&opts(reference_dir.clone(), 1, false, &["fig2", "fig4"])).unwrap();

    let dir = scratch("resume-shared");
    let partial = run_sweep(&opts(dir.clone(), 2, true, &["fig2"])).unwrap();
    assert!(partial.executed > 0);
    let resumed = run_sweep(&opts(dir.clone(), 2, true, &["fig2", "fig4"])).unwrap();
    assert_eq!(
        resumed.resumed, partial.executed,
        "fig2 replays from journal"
    );
    assert!(resumed.executed > 0, "fig4 cells still simulate");
    // Recorded trace artifacts persisted across the restart: the resumed
    // process validates them instead of re-recording.
    assert!(resumed.counters.trace_hits > 0);

    let truth = result_files(&reference_dir);
    let got = result_files(&dir);
    for (name, bytes) in &truth {
        assert_eq!(
            bytes, &got[name],
            "{name}: kill+resume with sharing matches the unshared reference"
        );
    }
    let json = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
    assert!(json.contains("\"traces\":{\"recorded\":"), "{json}");
    assert!(json.contains("\"ratio\":"), "{json}");
}
