//! End-to-end daemon acceptance: sweeps submitted over loopback produce
//! result CSVs byte-identical to the offline `experiments sweep`, and a
//! restarted daemon resumes from its manifests instead of re-simulating.

use popt_cli::serve::ExperimentCellRunner;
use popt_cli::sweep::{run_sweep, SweepOptions};
use popt_cli::Scale;
use popt_harness::ArtifactCache;
use popt_service::{client, Service, ServiceConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/popt-cli-test/service")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_daemon(out: &Path, jobs: usize) -> Service {
    let cache = Arc::new(ArtifactCache::open(out.join("cache")).unwrap());
    let runner = Arc::new(ExperimentCellRunner::new(out.to_path_buf(), cache, None));
    Service::start(
        runner,
        &ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs,
            queue_depth: 16,
        },
    )
    .expect("bind loopback")
}

/// Figure CSVs keyed by file name (the comparable sweep output).
fn result_csvs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("output dir exists") {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        if name.ends_with(".csv") && !name.starts_with("sweep_report") {
            out.insert(name, std::fs::read(entry.path()).unwrap());
        }
    }
    out
}

#[test]
fn daemon_sweep_matches_offline_sweep_byte_for_byte() {
    let selection = ["fig2", "fig7"];
    // Offline reference.
    let offline = scratch("offline");
    run_sweep(&SweepOptions {
        scale: Scale::Tiny,
        jobs: 2,
        out: offline.clone(),
        only: selection.iter().map(|s| s.to_string()).collect(),
        inject_fail: None,
        share_traces: true,
    })
    .unwrap();

    // The same selection through the daemon.
    let served = scratch("daemon");
    let service = start_daemon(&served, 2);
    let addr = service.local_addr();

    let health = client::request(addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);

    let accepted = client::submit(
        addr,
        &selection.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "tiny",
        None,
    )
    .unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let id = client::sweep_id(&accepted).unwrap();
    let outcome = client::wait_sweep(addr, &id, Duration::from_secs(300)).unwrap();
    assert!(
        outcome.body.contains("\"state\":\"done\""),
        "{}",
        outcome.body
    );

    let m = client::request(addr, "GET", "/v1/metrics", None)
        .unwrap()
        .body;
    for family in [
        "popt_queue_depth",
        "popt_queue_capacity 16",
        "popt_inflight_cells",
        "popt_cells_total{outcome=\"completed\"} 2",
        "popt_cache_requests_total{kind=\"matrix\",outcome=\"build\"}",
        "popt_cell_latency_seconds_count 2",
    ] {
        assert!(m.contains(family), "missing {family} in:\n{m}");
    }

    let reference = result_csvs(&offline);
    let produced = result_csvs(&served);
    assert!(!reference.is_empty());
    assert_eq!(
        reference.keys().collect::<Vec<_>>(),
        produced.keys().collect::<Vec<_>>(),
        "same result files"
    );
    for (name, bytes) in &reference {
        assert_eq!(
            bytes, &produced[name],
            "{name} from the daemon must match the offline sweep byte-for-byte"
        );
    }

    service.shutdown().expect("graceful shutdown");

    // A restarted daemon on the same output directory resumes from the
    // per-cell manifests: resubmitting simulates nothing.
    let service = start_daemon(&served, 2);
    let addr = service.local_addr();
    let again = client::submit(addr, &["fig2".to_string()], "tiny", None).unwrap();
    assert_eq!(again.status, 202);
    let id = client::sweep_id(&again).unwrap();
    let outcome = client::wait_sweep(addr, &id, Duration::from_secs(300)).unwrap();
    assert!(
        outcome.body.contains("\"executed\":0"),
        "restart resumes instead of re-simulating: {}",
        outcome.body
    );
    assert!(
        outcome.body.contains("\"state\":\"done\""),
        "{}",
        outcome.body
    );
    service.shutdown().expect("second shutdown");
}

#[test]
fn daemon_reports_failed_cells_without_dying() {
    let out = scratch("failing");
    let cache = Arc::new(ArtifactCache::open(out.join("cache")).unwrap());
    // Inject a fault into fig2's urand cells: the daemon must survive,
    // report the cell failed, and keep serving.
    let runner = Arc::new(ExperimentCellRunner::new(
        out.clone(),
        cache,
        Some("fig2/tiny/urand".to_string()),
    ));
    let service = Service::start(
        runner,
        &ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 1,
            queue_depth: 16,
        },
    )
    .unwrap();
    let addr = service.local_addr();

    let accepted = client::submit(addr, &["fig2".to_string()], "tiny", None).unwrap();
    let id = client::sweep_id(&accepted).unwrap();
    let outcome = client::wait_sweep(addr, &id, Duration::from_secs(300)).unwrap();
    assert!(
        outcome.body.contains("\"state\":\"failed\""),
        "{}",
        outcome.body
    );
    assert!(
        client::request(addr, "GET", "/v1/healthz", None)
            .unwrap()
            .body
            .contains("\"status\":\"ok\""),
        "daemon survives a failing cell"
    );
    let m = client::request(addr, "GET", "/v1/metrics", None)
        .unwrap()
        .body;
    assert!(m.contains("popt_cells_total{outcome=\"failed\"} 1"), "{m}");
    service.shutdown().unwrap();
}
