//! The tier-1 oracle suite: every policy in the zoo, differentially checked
//! against the Mattson and MIN reference models on adversarial synthetic
//! traces, randomized fuzz traces, and real kernel traces over synthetic
//! graphs.
//!
//! The suite is deterministic by default; `POPT_ORACLE_SEED` reseeds the
//! adversarial batch for the CI randomized smoke run.

use popt_graph::generators;
use popt_kernels::App;
use popt_oracle::{gen, graph_aware_policies, NamedPolicy, OracleReport, TraceCase};
use popt_sim::PolicyKind;
use popt_trace::RecordingSink;
use proptest::prelude::*;

/// Cache geometries the sweeps run against: from a degenerate single-set
/// bank up to a small LLC slice.
const GEOMETRIES: [(usize, usize); 4] = [(1, 2), (2, 4), (4, 8), (8, 16)];

/// Every policy the harness can build without a graph: the full
/// `PolicyKind::ALL` registry plus the trace-built Belady oracle and a
/// line-range GRASP.
fn full_zoo() -> Vec<NamedPolicy> {
    let mut policies: Vec<NamedPolicy> = PolicyKind::ALL
        .iter()
        .map(|&kind| NamedPolicy::kind(kind))
        .collect();
    policies.push(NamedPolicy::belady());
    policies.push(NamedPolicy::grasp());
    policies
}

/// Seed for the adversarial batch; CI's randomized smoke job overrides it.
fn suite_seed() -> u64 {
    std::env::var("POPT_ORACLE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0BAD_5EED_0001)
}

/// The full adversarial battery across every geometry — the fixed-seed
/// backbone of the suite.
#[test]
fn adversarial_traces_pass_every_oracle() {
    let zoo = full_zoo();
    let seed = suite_seed();
    let mut report = OracleReport::new();
    for (sets, ways) in GEOMETRIES {
        for case in gen::adversarial_cases(sets, ways, seed) {
            report.check_case(&case, &zoo);
        }
    }
    assert!(report.ok(), "{}", report.render());
    // 8 adversarial cases per geometry.
    assert_eq!(report.cases.len(), GEOMETRIES.len() * 8);
}

/// A second fixed seed, so a single unlucky constant cannot hide a bug.
#[test]
fn adversarial_traces_pass_with_alternate_seed() {
    let zoo = full_zoo();
    let mut report = OracleReport::new();
    for (sets, ways) in [(2, 4), (4, 8)] {
        for case in gen::adversarial_cases(sets, ways, 0xFACE_FEED) {
            report.check_case(&case, &zoo);
        }
    }
    assert!(report.ok(), "{}", report.render());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized fuzz: arbitrary line streams over arbitrary small
    /// geometries must satisfy the whole battery. The vendored `proptest`
    /// shim is deterministic per test name, so this is reproducible; the
    /// harness's own delta-debugging minimizer supplies shrinking.
    #[test]
    fn random_traces_pass_every_oracle(
        geometry in prop::sample::select(vec![(1usize, 2usize), (2, 2), (2, 4), (4, 4)]),
        universe in 3u64..48,
        raw in prop::collection::vec(0u64..4096, 32..320),
    ) {
        let (sets, ways) = geometry;
        let lines: Vec<u64> = raw.iter().map(|r| r % universe).collect();
        let case = TraceCase::from_lines("fuzz", sets, ways, &lines);
        let mut report = OracleReport::new();
        report.check_case(&case, &full_zoo());
        prop_assert!(report.ok(), "{}", report.render());
    }

    /// The independent MIN model really is minimal among everything we can
    /// simulate, and Mattson's stack distances really are associativity
    /// monotone — checked directly on raw line streams.
    #[test]
    fn min_lower_bounds_and_inclusion_hold_on_raw_streams(
        universe in 2u64..24,
        raw in prop::collection::vec(0u64..4096, 16..200),
    ) {
        let lines: Vec<u64> = raw.iter().map(|r| r % universe).collect();
        let opt2 = popt_oracle::min_misses(1, 2, &lines);
        let opt4 = popt_oracle::min_misses(1, 4, &lines);
        // MIN is monotone in associativity.
        prop_assert!(opt4 <= opt2);
        let model = popt_oracle::Mattson::run(1, &lines);
        // LRU at any width can never beat MIN at that width.
        prop_assert!(model.misses_with_ways(2) >= opt2);
        prop_assert!(model.misses_with_ways(4) >= opt4);
    }
}

/// Kernel traces over synthetic graphs: the access shape the simulator was
/// built for, including the software control events the graph-aware
/// policies consume. Three apps × three graph families.
#[test]
fn kernel_traces_pass_every_oracle() {
    let runs = [
        (App::Pagerank, generators::uniform_random(96, 480, 11)),
        (App::Components, generators::mesh(8, 2, 12)),
        (App::Mis, generators::preferential_attachment(80, 3, 13)),
    ];
    let mut report = OracleReport::new();
    for (app, g) in runs {
        let plan = app.plan(&g);
        let mut sink = RecordingSink::new();
        app.trace(&g, &plan, &mut sink);
        let name = format!("kernel/{app}");
        // A small LLC slice so the irregular working set contends.
        let case = TraceCase::from_events(&name, 8, 8, sink.events(), Some(&plan.space));
        assert!(case.num_accesses() > 100, "{name}: trace too short");
        let mut zoo = full_zoo();
        zoo.extend(graph_aware_policies(app, &g));
        report.check_case(&case, &zoo);
    }
    assert!(report.ok(), "{}", report.render());
    assert!(
        report.policies.iter().any(|p| p == "T-OPT")
            && report.policies.iter().any(|p| p == "P-OPT"),
        "graph-aware policies must be in the battery"
    );
}

/// Deep sweep for bug hunting: many seeds, every geometry, every app.
/// Ignored by default (minutes, not seconds); run explicitly with
/// `cargo test -p popt-oracle -- --ignored` or via the CI oracle job.
#[test]
#[ignore = "deep sweep; run with -- --ignored"]
fn extended_sweep() {
    let zoo = full_zoo();
    let mut report = OracleReport::new();
    for (sets, ways) in GEOMETRIES {
        for seed in 0..24u64 {
            for case in gen::adversarial_cases(sets, ways, 0x1000_0000 + seed) {
                report.check_case(&case, &zoo);
            }
        }
    }
    for app in App::ALL {
        let g = generators::uniform_random(128, 768, 21);
        let plan = app.plan(&g);
        let mut sink = RecordingSink::new();
        app.trace(&g, &plan, &mut sink);
        for (sets, ways) in [(4, 4), (8, 8), (16, 16)] {
            let name = format!("kernel/{app}/{sets}x{ways}");
            let case = TraceCase::from_events(&name, sets, ways, sink.events(), Some(&plan.space));
            let mut policies = full_zoo();
            policies.extend(graph_aware_policies(app, &g));
            report.check_case(&case, &policies);
        }
    }
    assert!(report.ok(), "{}", report.render());
}

/// The library doctest's entry-point shape, pinned as a real test: the
/// one-call report over a default batch stays green.
#[test]
fn report_entry_point_stays_green() {
    let mut report = OracleReport::new();
    for case in gen::adversarial_cases(4, 4, 0x5eed) {
        report.check_case(&case, &NamedPolicy::zoo());
    }
    assert!(report.ok(), "{}", report.render());
    let rendered = report.render();
    assert!(rendered.contains("PASS"), "{rendered}");
}
