//! The unit of differential testing: one named trace against one cache
//! geometry.

use popt_sim::{AccessMeta, ControlEvent};
use popt_trace::{AccessKind, AddressSpace, RegionClass, SiteId, TraceEvent};

/// One step of a drive: a demand access or a software control event
/// (graph-aware policies consume the latter; everyone else ignores them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveOp {
    /// A demand access.
    Access(AccessMeta),
    /// A control message forwarded to the policy.
    Control(ControlEvent),
}

/// A named trace plus the single-level cache geometry to run it against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCase {
    /// Case label (stable across runs; used in reports).
    pub name: String,
    /// Number of sets (`set = line % sets`).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// The drive sequence.
    pub ops: Vec<DriveOp>,
}

impl TraceCase {
    /// Builds a pure read trace from line numbers (site 0, streaming).
    pub fn from_lines(name: &str, sets: usize, ways: usize, lines: &[u64]) -> Self {
        let metas = lines
            .iter()
            .map(|&line| AccessMeta {
                line,
                site: SiteId(0),
                kind: AccessKind::Read,
                class: RegionClass::Streaming,
            })
            .collect();
        Self::from_metas(name, sets, ways, metas)
    }

    /// Builds a case from fully specified access metadata.
    pub fn from_metas(name: &str, sets: usize, ways: usize, metas: Vec<AccessMeta>) -> Self {
        TraceCase {
            name: name.to_string(),
            sets,
            ways,
            ops: metas.into_iter().map(DriveOp::Access).collect(),
        }
    }

    /// Builds a case from a kernel or stored trace-event stream. Accesses
    /// become line-granular [`DriveOp::Access`] ops (classified through
    /// `space` when provided, streaming otherwise); `CurrentVertex`,
    /// `EpochBoundary` and `IterationBegin` become control ops so
    /// graph-aware policies see the paper's software interface;
    /// `Instructions`/`Core` events carry no replacement information and
    /// are dropped.
    pub fn from_events(
        name: &str,
        sets: usize,
        ways: usize,
        events: &[TraceEvent],
        space: Option<&AddressSpace>,
    ) -> Self {
        let ops = events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Access(a) => {
                    let class = space
                        .and_then(|s| s.region_of(a.addr))
                        .map_or(RegionClass::Streaming, |(_, r)| r.class());
                    Some(DriveOp::Access(AccessMeta {
                        line: popt_trace::line_of(a.addr),
                        site: a.site,
                        kind: a.kind,
                        class,
                    }))
                }
                TraceEvent::CurrentVertex(v) => {
                    Some(DriveOp::Control(ControlEvent::CurrentVertex(*v)))
                }
                TraceEvent::EpochBoundary => Some(DriveOp::Control(ControlEvent::EpochBoundary)),
                TraceEvent::IterationBegin => Some(DriveOp::Control(ControlEvent::IterationBegin)),
                TraceEvent::Instructions(_) | TraceEvent::Core(_) => None,
            })
            .collect();
        TraceCase {
            name: name.to_string(),
            sets,
            ways,
            ops,
        }
    }

    /// The line stream in access order — what the Mattson and MIN models
    /// consume, and what `Belady::from_trace` is built from.
    pub fn lines(&self) -> Vec<u64> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                DriveOp::Access(m) => Some(m.line),
                DriveOp::Control(_) => None,
            })
            .collect()
    }

    /// Number of demand accesses.
    pub fn num_accesses(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, DriveOp::Access(_)))
            .count()
    }

    /// Whether the case contains no control events (the shrinker and the
    /// line-level metamorphic transforms require this).
    pub fn is_pure_accesses(&self) -> bool {
        self.ops.iter().all(|op| matches!(op, DriveOp::Access(_)))
    }

    /// Same geometry and name, different line stream (site/kind/class reset
    /// to the pure-read defaults). Used when replaying shrunk candidates.
    pub fn with_lines(&self, lines: &[u64]) -> TraceCase {
        TraceCase::from_lines(&self.name, self.sets, self.ways, lines)
    }

    /// Same trace against a different associativity.
    pub fn with_ways(&self, ways: usize) -> TraceCase {
        TraceCase {
            ways,
            ..self.clone()
        }
    }

    /// The case truncated to its first `n` demand accesses (control events
    /// before the cut are kept).
    pub fn prefix(&self, n: usize) -> TraceCase {
        let mut ops = Vec::new();
        let mut accesses = 0;
        for op in &self.ops {
            if accesses == n {
                break;
            }
            if matches!(op, DriveOp::Access(_)) {
                accesses += 1;
            }
            ops.push(*op);
        }
        TraceCase {
            name: format!("{}[..{n}]", self.name),
            sets: self.sets,
            ways: self.ways,
            ops,
        }
    }

    /// Remaps every access's set index through `perm` (a permutation of
    /// `0..sets`), keeping the tag bits: `line ↦ (line / sets) * sets +
    /// perm[line % sets]`. Outcomes of set-symmetric policies must be
    /// invariant under this transformation.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != sets`.
    pub fn permute_sets(&self, perm: &[usize]) -> TraceCase {
        assert_eq!(perm.len(), self.sets, "perm must cover every set");
        let sets = self.sets as u64;
        let ops = self
            .ops
            .iter()
            .map(|op| match op {
                DriveOp::Access(m) => {
                    let mapped = (m.line / sets) * sets + perm[(m.line % sets) as usize] as u64;
                    DriveOp::Access(AccessMeta { line: mapped, ..*m })
                }
                DriveOp::Control(c) => DriveOp::Control(*c),
            })
            .collect();
        TraceCase {
            name: format!("{}+perm", self.name),
            sets: self.sets,
            ways: self.ways,
            ops,
        }
    }

    /// Inserts an immediate repeat after every `stride`-th access. Returns
    /// the transformed case and, per op, whether it is an inserted
    /// duplicate. Since the cache probes before consulting the policy,
    /// every duplicate must hit regardless of policy.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn with_duplicates(&self, stride: usize) -> (TraceCase, Vec<bool>) {
        assert!(stride > 0, "stride must be positive");
        let mut ops = Vec::new();
        let mut is_dup = Vec::new();
        let mut accesses = 0usize;
        for op in &self.ops {
            ops.push(*op);
            if let DriveOp::Access(m) = op {
                is_dup.push(false);
                accesses += 1;
                if accesses.is_multiple_of(stride) {
                    ops.push(DriveOp::Access(*m));
                    is_dup.push(true);
                }
            }
        }
        let case = TraceCase {
            name: format!("{}+dup{stride}", self.name),
            sets: self.sets,
            ways: self.ways,
            ops,
        };
        (case, is_dup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_roundtrip_and_prefix() {
        let c = TraceCase::from_lines("t", 2, 2, &[1, 2, 3, 4]);
        assert_eq!(c.lines(), vec![1, 2, 3, 4]);
        assert!(c.is_pure_accesses());
        let p = c.prefix(2);
        assert_eq!(p.lines(), vec![1, 2]);
        assert_eq!(p.num_accesses(), 2);
    }

    #[test]
    fn set_permutation_preserves_tags() {
        let c = TraceCase::from_lines("t", 4, 2, &[0, 5, 10, 15]);
        // Rotation by one: set s -> s + 1 (mod 4).
        let p = c.permute_sets(&[1, 2, 3, 0]);
        assert_eq!(p.lines(), vec![1, 6, 11, 12]);
    }

    #[test]
    fn duplicates_are_flagged() {
        let c = TraceCase::from_lines("t", 1, 2, &[7, 8, 9]);
        let (d, flags) = c.with_duplicates(2);
        assert_eq!(d.lines(), vec![7, 8, 8, 9]);
        assert_eq!(flags, vec![false, false, true, false]);
    }
}
