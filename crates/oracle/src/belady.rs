//! An independent Belady/MIN reference simulator.
//!
//! Deliberately implemented against nothing but the raw line stream — no
//! `ReplacementPolicy`, no `SetAssocCache` — so that a bug in the
//! simulator's probe/fill/victim plumbing cannot cancel out an identical
//! bug here. Two facts make it an oracle:
//!
//! 1. **Optimality.** For a demand-fill set-associative cache, evicting
//!    the resident line whose next use lies furthest in the future is
//!    optimal (Belady 1966; Mattson et al. 1970 for the set-partitioned
//!    case, since sets are independent). No policy may produce fewer
//!    misses on any trace.
//! 2. **Uniqueness of outcomes.** MIN's hit/miss sequence is unique even
//!    though victim choice may tie: ties can only occur between lines that
//!    are both never referenced again, and evicting either produces the
//!    same outcome for every later access. `policies/belady.rs` must
//!    therefore match this model access-for-access, not just in total.

use std::collections::HashMap;

/// Next-use sentinel: the line is never referenced again.
const NEVER: u64 = u64::MAX;

/// Outcome of a MIN simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinResult {
    /// Per-access hit/miss in trace order (`true` = hit).
    pub outcomes: Vec<bool>,
    /// Total misses (including cold misses).
    pub misses: u64,
}

/// Simulates Belady's MIN on `lines` for a `sets × ways` cache
/// (`set = line % sets`), returning per-access outcomes.
///
/// # Panics
///
/// Panics if `sets == 0` or `ways == 0`.
pub fn simulate_min(sets: usize, ways: usize, lines: &[u64]) -> MinResult {
    assert!(sets > 0 && ways > 0, "degenerate cache geometry");

    // Forward pass: collect every line's occurrence positions, then each
    // access's next-use position is the following occurrence.
    let mut occurrences: HashMap<u64, Vec<u64>> = HashMap::new();
    for (i, &line) in lines.iter().enumerate() {
        occurrences.entry(line).or_default().push(i as u64);
    }
    let mut cursor: HashMap<u64, usize> = HashMap::new();
    let mut next_use = vec![NEVER; lines.len()];
    for (i, &line) in lines.iter().enumerate() {
        let occ = &occurrences[&line];
        let k = cursor.entry(line).or_insert(0);
        debug_assert_eq!(occ[*k], i as u64);
        next_use[i] = occ.get(*k + 1).copied().unwrap_or(NEVER);
        *k += 1;
    }

    // Per-set resident lines as (line, next_use_position) pairs.
    let mut resident: Vec<Vec<(u64, u64)>> = vec![Vec::new(); sets];
    let mut outcomes = Vec::with_capacity(lines.len());
    let mut misses = 0u64;
    for (i, &line) in lines.iter().enumerate() {
        let set = &mut resident[(line % sets as u64) as usize];
        if let Some(entry) = set.iter_mut().find(|(l, _)| *l == line) {
            entry.1 = next_use[i];
            outcomes.push(true);
            continue;
        }
        misses += 1;
        outcomes.push(false);
        if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .max_by_key(|(_, &(_, nu))| nu)
                .map(|(idx, _)| idx)
                .expect("full set has a victim");
            set.swap_remove(victim);
        }
        set.push((line, next_use[i]));
    }
    MinResult { outcomes, misses }
}

/// The optimal (minimum achievable) miss count for `lines` on a
/// `sets × ways` cache.
pub fn min_misses(sets: usize, ways: usize, lines: &[u64]) -> u64 {
    simulate_min(sets, ways, lines).misses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_walkthrough() {
        // The paper's Figure 3, 2-way: S1 S2 S4 S2 S3 S0. MIN keeps S2
        // across the S4 fill, so exactly the second S2 hits.
        let r = simulate_min(1, 2, &[1, 2, 4, 2, 3, 0]);
        assert_eq!(r.outcomes, vec![false, false, false, true, false, false]);
        assert_eq!(r.misses, 5);
    }

    #[test]
    fn working_set_that_fits_only_cold_misses() {
        let lines: Vec<u64> = (0..4u64).cycle().take(100).collect();
        let r = simulate_min(1, 4, &lines);
        assert_eq!(r.misses, 4);
    }

    #[test]
    fn cyclic_thrash_misses_once_per_round() {
        // N+1 lines cycling through N ways: each miss evicts the line whose
        // next use is furthest (N accesses away), which becomes the next
        // miss — steady-state miss rate exactly 1/N. For 4 ways, 5 lines,
        // 1000 accesses: 4 cold + misses at positions 4, 8, …, 996 = 253.
        let lines: Vec<u64> = (0..5u64).cycle().take(1000).collect();
        let r = simulate_min(1, 4, &lines);
        assert_eq!(r.misses, 253);
    }

    #[test]
    fn sets_are_independent() {
        // Two interleaved single-set problems must not interact.
        let a: Vec<u64> = [0u64, 2, 4, 0, 2, 4].to_vec(); // set 0 of 2 sets
        let b: Vec<u64> = [1u64, 3, 5, 1, 3, 5].to_vec(); // set 1
        let interleaved: Vec<u64> = a.iter().zip(&b).flat_map(|(&x, &y)| [x, y]).collect();
        let merged = simulate_min(2, 2, &interleaved);
        let alone_a = simulate_min(1, 2, &a);
        let alone_b = simulate_min(1, 2, &b);
        assert_eq!(merged.misses, alone_a.misses + alone_b.misses);
    }

    #[test]
    fn misses_are_monotone_in_trace_length() {
        // Optimal misses cannot decrease when the trace grows: an optimal
        // schedule for the longer trace is feasible for the prefix.
        let lines: Vec<u64> = (0..400u64).map(|i| (i * 13 + i / 7) % 29).collect();
        let mut prev = 0;
        for cut in (0..=lines.len()).step_by(23) {
            let m = min_misses(2, 4, &lines[..cut]);
            assert!(m >= prev, "prefix {cut}: {m} < {prev}");
            prev = m;
        }
    }
}
