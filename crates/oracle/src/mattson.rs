//! Mattson's stack-distance algorithm (Mattson et al., 1970).
//!
//! True LRU is a *stack algorithm*: at any instant the lines of a set can
//! be arranged in a recency stack such that a cache of associativity `w`
//! holds exactly the top `w` entries. One pass recording each access's
//! stack depth therefore predicts hit counts for every associativity
//! simultaneously, and those counts are automatically monotone in `w` —
//! the inclusion property. Both facts make the model a strong differential
//! oracle for `popt-sim`'s LRU: the per-access outcomes must match the
//! simulator exactly, for every geometry, without sharing a line of code
//! with it.

/// Stack-distance model over a set-indexed trace (`set = line % sets`,
/// matching `SetAssocCache`'s placement rule).
#[derive(Debug, Clone)]
pub struct Mattson {
    sets: usize,
    /// Per-set recency stacks, most recent first.
    stacks: Vec<Vec<u64>>,
    /// `histogram[d]` = number of accesses with stack distance `d`.
    histogram: Vec<u64>,
    /// First-touch (infinite-distance) accesses.
    cold: u64,
    /// Per access, in trace order: the stack distance (`None` = cold).
    distances: Vec<Option<usize>>,
}

impl Mattson {
    /// Creates an empty model for a cache of `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0`.
    pub fn new(sets: usize) -> Self {
        assert!(sets > 0, "a cache needs at least one set");
        Mattson {
            sets,
            stacks: vec![Vec::new(); sets],
            histogram: Vec::new(),
            cold: 0,
            distances: Vec::new(),
        }
    }

    /// Convenience: runs a whole line trace through a fresh model.
    pub fn run(sets: usize, lines: &[u64]) -> Self {
        let mut m = Mattson::new(sets);
        for &line in lines {
            m.access(line);
        }
        m
    }

    /// Processes one access; returns its stack distance (`None` = cold).
    pub fn access(&mut self, line: u64) -> Option<usize> {
        let set = (line % self.sets as u64) as usize;
        let stack = &mut self.stacks[set];
        let depth = stack.iter().position(|&l| l == line);
        match depth {
            Some(d) => {
                stack.remove(d);
                stack.insert(0, line);
                if self.histogram.len() <= d {
                    self.histogram.resize(d + 1, 0);
                }
                self.histogram[d] += 1;
            }
            None => {
                stack.insert(0, line);
                self.cold += 1;
            }
        }
        self.distances.push(depth);
        depth
    }

    /// Total accesses seen.
    pub fn total(&self) -> u64 {
        self.distances.len() as u64
    }

    /// First-touch accesses (misses at any associativity).
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Predicted LRU hits for a `ways`-associative cache: accesses whose
    /// stack distance is below `ways`. Monotone non-decreasing in `ways`
    /// by construction (the inclusion property).
    pub fn hits_with_ways(&self, ways: usize) -> u64 {
        self.histogram.iter().take(ways).sum()
    }

    /// Predicted LRU misses for a `ways`-associative cache.
    pub fn misses_with_ways(&self, ways: usize) -> u64 {
        self.total() - self.hits_with_ways(ways)
    }

    /// Predicted per-access hit/miss outcomes at associativity `ways`,
    /// in trace order.
    pub fn outcomes_with_ways(&self, ways: usize) -> Vec<bool> {
        self.distances
            .iter()
            .map(|d| matches!(d, Some(depth) if *depth < ways))
            .collect()
    }

    /// Per-access stack distances in trace order (`None` = cold).
    pub fn distances(&self) -> &[Option<usize>] {
        &self.distances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_on_a_simple_reuse_pattern() {
        // 1 set. Trace: a b a b c a — distances: ∞ ∞ 1 1 ∞ 2.
        let m = Mattson::run(1, &[10, 20, 10, 20, 30, 10]);
        assert_eq!(
            m.distances(),
            &[None, None, Some(1), Some(1), None, Some(2)]
        );
        assert_eq!(m.cold_misses(), 3);
        assert_eq!(m.hits_with_ways(1), 0);
        assert_eq!(m.hits_with_ways(2), 2);
        assert_eq!(m.hits_with_ways(3), 3);
    }

    #[test]
    fn hits_are_monotone_in_ways() {
        let lines: Vec<u64> = (0..500u64).map(|i| (i * 7 + i / 3) % 40).collect();
        let m = Mattson::run(4, &lines);
        let mut prev = 0;
        for ways in 1..=20 {
            let h = m.hits_with_ways(ways);
            assert!(h >= prev, "{ways}-way hits {h} < {prev}");
            prev = h;
        }
        assert_eq!(m.total(), 500);
    }

    #[test]
    fn sets_partition_the_stack() {
        // Lines 0 and 2 share set 0 of a 2-set cache; line 1 is set 1 and
        // must not disturb their recency.
        let m = Mattson::run(2, &[0, 1, 2, 1, 0]);
        // Access 4 (line 0): set-0 stack was [2, 0] -> distance 1.
        assert_eq!(m.distances()[4], Some(1));
        // Access 3 (line 1): set-1 stack was [1] -> distance 0.
        assert_eq!(m.distances()[3], Some(0));
    }

    #[test]
    fn outcomes_match_histogram_totals() {
        let lines: Vec<u64> = (0..300u64).map(|i| i % 23).collect();
        let m = Mattson::run(2, &lines);
        for ways in [1usize, 2, 4, 8, 16] {
            let from_outcomes = m.outcomes_with_ways(ways).iter().filter(|&&h| h).count() as u64;
            assert_eq!(from_outcomes, m.hits_with_ways(ways));
        }
    }
}
