//! Named, rebuildable policy constructors for the differential harness.
//!
//! The harness reruns a policy from scratch many times — on the original
//! case, on shrunk candidates, on metamorphic transforms — so instead of a
//! policy *instance* it works with a named *builder* plus the two trait
//! facts the metamorphic checks need:
//!
//! * `online` — decisions depend only on the past. Online policies obey
//!   prefix closure (rerunning a prefix reproduces the full run's first
//!   outcomes); `Belady` looks ahead and is exempt.
//! * `set_symmetric` — behavior is invariant under relabeling set indices.
//!   Policies with set-indexed asymmetries (DRRIP leader sets, Hawkeye and
//!   SDBP set sampling, SHiP-Mem and GRASP line-value dependence) are
//!   exempt from the set-permutation check.

use crate::case::TraceCase;
use popt_core::{Encoding, Popt, PoptConfig, Quantization, RerefMatrix, StreamBinding, Topt};
use popt_graph::Graph;
use popt_kernels::App;
use popt_sim::policies::{Belady, Grasp, GraspRegions};
use popt_sim::{PolicyKind, ReplacementPolicy};
use std::sync::Arc;

type Builder = Box<dyn Fn(&TraceCase) -> Box<dyn ReplacementPolicy>>;

/// A named policy constructor plus its metamorphic eligibility.
pub struct NamedPolicy {
    /// Display name (matches the policy's own `name()` where applicable).
    pub name: String,
    /// Decisions depend only on past accesses.
    pub online: bool,
    /// Behavior is invariant under set-index relabeling.
    pub set_symmetric: bool,
    build: Builder,
}

impl std::fmt::Debug for NamedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamedPolicy")
            .field("name", &self.name)
            .field("online", &self.online)
            .field("set_symmetric", &self.set_symmetric)
            .finish()
    }
}

impl NamedPolicy {
    /// Wraps one of the geometry-only zoo policies.
    pub fn kind(kind: PolicyKind) -> Self {
        // DRRIP duels via leader *set indices*; Hawkeye and SDBP sample by
        // set index; SHiP-Mem signatures are line values, which a set
        // permutation rewrites. Everything else treats sets uniformly
        // (BRRIP's bimodal counter is global and fills keep their order).
        let set_symmetric = matches!(
            kind,
            PolicyKind::Lru
                | PolicyKind::BitPlru
                | PolicyKind::Random
                | PolicyKind::Srrip
                | PolicyKind::Brrip
                | PolicyKind::ShipPc
                | PolicyKind::Leeway
        );
        NamedPolicy {
            name: kind.label().to_string(),
            online: true,
            set_symmetric,
            build: Box::new(move |case| kind.build(case.sets, case.ways)),
        }
    }

    /// The two-pass Belady oracle, rebuilt from each case's line stream.
    pub fn belady() -> Self {
        NamedPolicy {
            name: "OPT".to_string(),
            online: false,
            set_symmetric: true,
            build: Box::new(|case| {
                Box::new(Belady::from_trace(case.sets, case.ways, &case.lines()))
            }),
        }
    }

    /// GRASP with region boundaries derived from the case's line universe:
    /// the lowest third of the touched range is "hot", the middle third
    /// "warm" — a stand-in for a degree-ordered vertex array.
    pub fn grasp() -> Self {
        NamedPolicy {
            name: "GRASP".to_string(),
            online: true,
            // Region boundaries are line values; permutation moves lines
            // across them.
            set_symmetric: false,
            build: Box::new(|case| {
                let lines = case.lines();
                let lo = lines.iter().copied().min().unwrap_or(0);
                let hi = lines.iter().copied().max().unwrap_or(0) + 1;
                let span = hi - lo;
                let regions = GraspRegions::new(lo, lo + span / 3, lo + 2 * span / 3);
                Box::new(Grasp::new(case.sets, case.ways, regions))
            }),
        }
    }

    /// Wraps an arbitrary constructor (used for graph-aware policies whose
    /// inputs — transpose CSR, Rereference Matrices — live outside the
    /// case).
    pub fn custom(
        name: &str,
        online: bool,
        set_symmetric: bool,
        build: impl Fn(&TraceCase) -> Box<dyn ReplacementPolicy> + 'static,
    ) -> Self {
        NamedPolicy {
            name: name.to_string(),
            online,
            set_symmetric,
            build: Box::new(build),
        }
    }

    /// Instantiates the policy for `case`.
    pub fn build(&self, case: &TraceCase) -> Box<dyn ReplacementPolicy> {
        (self.build)(case)
    }

    /// The full geometry-only zoo plus the Belady policy and GRASP —
    /// everything constructible without a graph.
    pub fn zoo() -> Vec<NamedPolicy> {
        let mut all: Vec<NamedPolicy> = PolicyKind::ALL.iter().map(|&k| Self::kind(k)).collect();
        all.push(Self::belady());
        all.push(Self::grasp());
        all
    }
}

/// T-OPT and P-OPT configured for one traced kernel run over `g`,
/// mirroring the CLI runner's construction path: the transpose CSR and the
/// per-stream Rereference Matrices (paper-default 8-bit inter+intra
/// entries) are built once and shared across rebuilds via `Arc`.
///
/// Both are online (their lookahead comes from graph structure plus the
/// software control events in the trace, never from future accesses) but
/// not set-symmetric (their decisions depend on line values).
pub fn graph_aware_policies(app: App, g: &Graph) -> Vec<NamedPolicy> {
    let plan = app.plan(g);
    let transpose = Arc::new(g.transpose_of(app.direction()).clone());
    let streams = plan.irregular_streams();
    let topt_transpose = Arc::clone(&transpose);
    let topt = NamedPolicy::custom("T-OPT", true, false, move |case| {
        Box::new(Topt::new(
            Arc::clone(&topt_transpose),
            streams.clone(),
            case.sets,
            case.ways,
        ))
    });
    let bindings: Vec<StreamBinding> = plan
        .irregs
        .iter()
        .map(|spec| {
            let region = plan.space.region(spec.region);
            let matrix = RerefMatrix::build(
                &transpose,
                u32::try_from(region.elems_per_line()).expect("elems_per_line fits u32"),
                spec.vertices_per_elem,
                Quantization::EIGHT,
                Encoding::InterIntra,
            );
            StreamBinding {
                base: region.base(),
                bound: region.bound(),
                matrix: Arc::new(matrix),
            }
        })
        .collect();
    let popt = NamedPolicy::custom("P-OPT", true, false, move |case| {
        Box::new(Popt::new(
            PoptConfig::new(bindings.clone()),
            case.sets,
            case.ways,
        ))
    });
    vec![topt, popt]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_covers_every_kind_plus_oracles() {
        let zoo = NamedPolicy::zoo();
        assert_eq!(zoo.len(), PolicyKind::ALL.len() + 2);
        let case = TraceCase::from_lines("t", 2, 2, &[0, 1, 2, 3]);
        for p in &zoo {
            assert!(!p.build(&case).name().is_empty(), "{}", p.name);
        }
        let opt = zoo.iter().find(|p| p.name == "OPT").unwrap();
        assert!(!opt.online, "Belady looks ahead");
    }
}
