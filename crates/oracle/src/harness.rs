//! Driving cases through `popt-sim` and diffing against the reference
//! models.

use crate::belady::{min_misses, simulate_min};
use crate::case::{DriveOp, TraceCase};
use crate::mattson::Mattson;
use crate::shrink;
use crate::zoo::NamedPolicy;
use popt_sim::{CacheConfig, CacheStats, ReplacementPolicy, SetAssocCache};

/// Result of one policy run over one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Per-access hit/miss in access order (`true` = hit).
    pub outcomes: Vec<bool>,
    /// Demand misses.
    pub misses: u64,
    /// Full simulator statistics.
    pub stats: CacheStats,
}

/// Runs `case` through a single-level `SetAssocCache` under `policy`.
pub fn run_case(case: &TraceCase, policy: Box<dyn ReplacementPolicy>) -> RunResult {
    let cfg = CacheConfig::new(64 * case.sets * case.ways, case.ways);
    debug_assert_eq!(cfg.num_sets(), case.sets);
    let mut cache = SetAssocCache::new(cfg, policy);
    let mut outcomes = Vec::with_capacity(case.ops.len());
    for op in &case.ops {
        match op {
            DriveOp::Access(meta) => outcomes.push(cache.access(meta).is_hit()),
            DriveOp::Control(event) => cache.control(event),
        }
    }
    RunResult {
        outcomes,
        misses: cache.stats().misses,
        stats: *cache.stats(),
    }
}

/// One oracle disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke (stable identifier, e.g. `belady-bound`).
    pub check: String,
    /// The offending policy.
    pub policy: String,
    /// The case it broke on.
    pub case_name: String,
    /// Human-readable explanation with the disagreeing numbers.
    pub detail: String,
    /// Minimized pure-line witness, when the case was shrinkable.
    pub minimized: Option<Vec<u64>>,
}

impl Violation {
    fn new(check: &str, policy: &str, case: &TraceCase, detail: String) -> Self {
        Violation {
            check: check.to_string(),
            policy: policy.to_string(),
            case_name: case.name.clone(),
            detail,
            minimized: None,
        }
    }
}

/// Index of the first position where two outcome sequences disagree,
/// rendered for a violation report.
fn first_divergence(a: &[bool], b: &[bool]) -> String {
    if a.len() != b.len() {
        return format!("length mismatch: {} vs {}", a.len(), b.len());
    }
    match a.iter().zip(b).position(|(x, y)| x != y) {
        Some(i) => format!(
            "first divergence at access {i}: simulator={} oracle={}",
            if a[i] { "hit" } else { "miss" },
            if b[i] { "hit" } else { "miss" },
        ),
        None => "sequences agree".to_string(),
    }
}

/// No policy may beat Belady's minimum miss count. On violation, a
/// delta-debugging pass shrinks pure-access cases to a minimal witness.
pub fn check_belady_bound(case: &TraceCase, policies: &[NamedPolicy]) -> Vec<Violation> {
    let lines = case.lines();
    let optimal = min_misses(case.sets, case.ways, &lines);
    let mut violations = Vec::new();
    for p in policies {
        let got = run_case(case, p.build(case)).misses;
        if got < optimal {
            let mut v = Violation::new(
                "belady-bound",
                &p.name,
                case,
                format!("policy made {got} misses, below the optimal {optimal}"),
            );
            if case.is_pure_accesses() {
                v.minimized = Some(shrink::minimize_lines(&lines, |cand| {
                    let c = case.with_lines(cand);
                    run_case(&c, p.build(&c)).misses < min_misses(c.sets, c.ways, cand)
                }));
            }
            violations.push(v);
        }
    }
    violations
}

/// `policies/belady.rs`, run through the full simulator plumbing, must
/// reproduce the independent MIN model access-for-access. (MIN's outcome
/// sequence is unique: victim ties only arise between never-reused lines,
/// which are outcome-equivalent.)
pub fn check_belady_exact(case: &TraceCase) -> Vec<Violation> {
    let lines = case.lines();
    let reference = simulate_min(case.sets, case.ways, &lines);
    let belady = NamedPolicy::belady();
    let got = run_case(case, belady.build(case));
    if got.outcomes == reference.outcomes {
        return Vec::new();
    }
    let mut v = Violation::new(
        "belady-exact",
        "OPT",
        case,
        format!(
            "simulator OPT made {} misses vs reference {}; {}",
            got.misses,
            reference.misses,
            first_divergence(&got.outcomes, &reference.outcomes)
        ),
    );
    if case.is_pure_accesses() {
        v.minimized = Some(shrink::minimize_lines(&lines, |cand| {
            let c = case.with_lines(cand);
            let b = NamedPolicy::belady();
            run_case(&c, b.build(&c)).outcomes != simulate_min(c.sets, c.ways, cand).outcomes
        }));
    }
    vec![v]
}

/// `policies/lru.rs` must reproduce the Mattson stack model
/// access-for-access at the case's associativity.
pub fn check_mattson_exact(case: &TraceCase) -> Vec<Violation> {
    let lines = case.lines();
    let model = Mattson::run(case.sets, &lines);
    let lru = NamedPolicy::kind(popt_sim::PolicyKind::Lru);
    let got = run_case(case, lru.build(case));
    let predicted = model.outcomes_with_ways(case.ways);
    if got.outcomes == predicted {
        return Vec::new();
    }
    let mut v = Violation::new(
        "mattson-exact",
        "LRU",
        case,
        format!(
            "simulator LRU made {} misses vs Mattson {}; {}",
            got.misses,
            model.misses_with_ways(case.ways),
            first_divergence(&got.outcomes, &predicted)
        ),
    );
    if case.is_pure_accesses() {
        v.minimized = Some(shrink::minimize_lines(&lines, |cand| {
            let c = case.with_lines(cand);
            let p = NamedPolicy::kind(popt_sim::PolicyKind::Lru);
            run_case(&c, p.build(&c)).outcomes
                != Mattson::run(c.sets, cand).outcomes_with_ways(c.ways)
        }));
    }
    vec![v]
}

/// Associativities checked by the stack-inclusion sweep.
const INCLUSION_WAYS: [usize; 4] = [2, 4, 8, 16];

/// LRU's inclusion property: hits must be monotone non-decreasing across
/// 2/4/8/16 ways, and at every width the simulated LRU must agree with the
/// Mattson prediction.
pub fn check_stack_inclusion(case: &TraceCase) -> Vec<Violation> {
    let lines = case.lines();
    let model = Mattson::run(case.sets, &lines);
    let mut violations = Vec::new();
    let mut prev = 0u64;
    for ways in INCLUSION_WAYS {
        let widened = case.with_ways(ways);
        let lru = NamedPolicy::kind(popt_sim::PolicyKind::Lru);
        let hits = run_case(&widened, lru.build(&widened)).stats.hits;
        let predicted = model.hits_with_ways(ways);
        if hits != predicted {
            violations.push(Violation::new(
                "stack-inclusion",
                "LRU",
                case,
                format!("{ways}-way LRU hit {hits} times; Mattson predicts {predicted}"),
            ));
        }
        if hits < prev {
            violations.push(Violation::new(
                "stack-inclusion",
                "LRU",
                case,
                format!("{ways}-way LRU hits {hits} fell below the narrower cache's {prev}"),
            ));
        }
        prev = hits;
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_case_counts_match_stats() {
        let case = TraceCase::from_lines("t", 2, 2, &[0, 1, 2, 0, 1, 2]);
        let lru = NamedPolicy::kind(popt_sim::PolicyKind::Lru);
        let r = run_case(&case, lru.build(&case));
        assert_eq!(r.outcomes.len(), 6);
        assert_eq!(r.outcomes.iter().filter(|&&h| !h).count() as u64, r.misses);
        assert_eq!(r.stats.hits + r.stats.misses, 6);
    }

    #[test]
    fn clean_zoo_produces_no_violations_on_a_small_case() {
        let lines: Vec<u64> = (0..200u64).map(|i| (i * 3 + i / 5) % 17).collect();
        let case = TraceCase::from_lines("clean", 2, 4, &lines);
        assert_eq!(check_belady_bound(&case, &NamedPolicy::zoo()), vec![]);
        assert_eq!(check_belady_exact(&case), vec![]);
        assert_eq!(check_mattson_exact(&case), vec![]);
        assert_eq!(check_stack_inclusion(&case), vec![]);
    }

    #[test]
    fn first_divergence_pinpoints_the_index() {
        let a = [true, true, false];
        let b = [true, false, false];
        assert!(first_divergence(&a, &b).contains("access 1"));
        assert!(first_divergence(&a, &a).contains("agree"));
        assert!(first_divergence(&a, &b[..2]).contains("length"));
    }
}
