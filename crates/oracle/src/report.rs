//! Aggregation and deterministic rendering of oracle results.

use crate::case::TraceCase;
use crate::harness::{
    check_belady_bound, check_belady_exact, check_mattson_exact, check_stack_inclusion, Violation,
};
use crate::metamorphic::{check_duplicate_hits, check_prefix_closure, check_set_permutation};
use crate::zoo::NamedPolicy;

/// Accumulated result of an oracle run. Rendering is deterministic:
/// violations sort by (case, check, policy), so equal inputs produce
/// byte-equal reports.
#[derive(Debug, Default)]
pub struct OracleReport {
    /// Case names, in check order.
    pub cases: Vec<String>,
    /// Union of policy names checked.
    pub policies: Vec<String>,
    /// Individual invariant evaluations performed.
    pub checks_run: u64,
    /// Every disagreement found.
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the full check battery — Belady bound, Belady exactness,
    /// Mattson exactness, stack inclusion, and the three metamorphic
    /// suites — for one case, accumulating violations.
    pub fn check_case(&mut self, case: &TraceCase, policies: &[NamedPolicy]) {
        self.cases.push(case.name.clone());
        for p in policies {
            if !self.policies.iter().any(|n| n == &p.name) {
                self.policies.push(p.name.clone());
            }
        }
        // One evaluation per (policy, bound) + the LRU/OPT exactness and
        // inclusion sweeps + the metamorphic battery.
        self.checks_run += policies.len() as u64 + 3;
        self.violations.extend(check_belady_bound(case, policies));
        self.violations.extend(check_belady_exact(case));
        self.violations.extend(check_mattson_exact(case));
        self.violations.extend(check_stack_inclusion(case));
        self.checks_run += 3;
        self.violations.extend(check_prefix_closure(case, policies));
        self.violations.extend(check_duplicate_hits(case, policies));
        self.violations
            .extend(check_set_permutation(case, policies));
    }

    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report. Output is stable across runs and platforms:
    /// cases keep insertion order, violations are sorted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "oracle: {} cases, {} policies, {} checks\n",
            self.cases.len(),
            self.policies.len(),
            self.checks_run
        ));
        let mut sorted: Vec<&Violation> = self.violations.iter().collect();
        sorted.sort_by(|a, b| {
            (&a.case_name, &a.check, &a.policy).cmp(&(&b.case_name, &b.check, &b.policy))
        });
        if sorted.is_empty() {
            out.push_str("result: PASS — every invariant held\n");
            return out;
        }
        out.push_str(&format!("result: FAIL — {} violation(s)\n", sorted.len()));
        for v in sorted {
            out.push_str(&format!(
                "  [{}] {} on {}: {}\n",
                v.check, v.policy, v.case_name, v.detail
            ));
            if let Some(w) = &v.minimized {
                out.push_str(&format!(
                    "    minimized witness ({} lines): {w:?}\n",
                    w.len()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_report_renders_pass_deterministically() {
        let run = || {
            let mut r = OracleReport::new();
            r.check_case(&gen::random_trace(2, 2, 3, 12, 300), &NamedPolicy::zoo());
            r.render()
        };
        let a = run();
        assert!(a.contains("PASS"), "{a}");
        assert_eq!(a, run());
    }

    #[test]
    fn violations_sort_in_render() {
        let mut r = OracleReport::new();
        let mk = |case: &str, check: &str| Violation {
            check: check.to_string(),
            policy: "P".to_string(),
            case_name: case.to_string(),
            detail: "d".to_string(),
            minimized: Some(vec![1, 2]),
        };
        r.violations.push(mk("zz", "b-check"));
        r.violations.push(mk("aa", "a-check"));
        let text = r.render();
        let first = text.find("aa").unwrap();
        let second = text.find("zz").unwrap();
        assert!(first < second, "{text}");
        assert!(text.contains("FAIL — 2 violation(s)"));
        assert!(text.contains("minimized witness (2 lines)"));
    }
}
