//! Differential-testing oracles for the replacement-policy zoo.
//!
//! P-OPT's results are miss counts, so every number the experiments print
//! is only as trustworthy as `popt-sim`'s hit/miss accounting and victim
//! selection. This crate cross-checks the simulator against independently
//! implemented reference models:
//!
//! * [`Mattson`] — the classic stack-distance model. One pass over a trace
//!   predicts true-LRU hits for *every* associativity at once, which both
//!   pins `policies/lru.rs` exactly and verifies the LRU inclusion (stack)
//!   property across 2/4/8/16 ways.
//! * [`simulate_min`] — an O(n·ways) forward-scan Belady/MIN simulator
//!   built only on the line stream, never on `popt-sim`'s policy plumbing.
//!   No replacement policy may ever beat its miss count, and
//!   `policies/belady.rs` must match it access-for-access.
//! * [`metamorphic`] — trace transformations with known-equal or
//!   known-ordered outcomes: prefix closure for online policies,
//!   duplicate-access idempotence, and set-permutation invariance for
//!   set-symmetric policies.
//! * [`gen`] — adversarial synthetic traces (scans, thrashing loops at
//!   ways±1, mixed streaming/reuse) and [`shrink`] — a greedy delta-debug
//!   minimizer that turns any violation into a small regression witness.
//!
//! Violations are collected into an [`OracleReport`] whose rendering is
//! deterministic, so CI diffs and the `experiments oracle` verb produce
//! stable output.
//!
//! # Example
//!
//! ```
//! use popt_oracle::{gen, NamedPolicy, OracleReport};
//!
//! let mut report = OracleReport::new();
//! for case in gen::adversarial_cases(4, 4, 0x5eed) {
//!     report.check_case(&case, &NamedPolicy::zoo());
//! }
//! assert!(report.ok(), "{}", report.render());
//! ```

mod belady;
mod case;
mod harness;
mod mattson;
mod report;
mod zoo;

pub mod gen;
pub mod metamorphic;
pub mod shrink;

pub use belady::{min_misses, simulate_min, MinResult};
pub use case::{DriveOp, TraceCase};
pub use harness::{
    check_belady_bound, check_belady_exact, check_mattson_exact, check_stack_inclusion, run_case,
    RunResult, Violation,
};
pub use mattson::Mattson;
pub use report::OracleReport;
pub use zoo::{graph_aware_policies, NamedPolicy};
