//! Metamorphic checks: trace transformations with provable outcome
//! relations.
//!
//! Unlike the differential checks, these need no reference model — the
//! simulator is compared against itself under transformations whose effect
//! is known a priori:
//!
//! * **Prefix closure.** An online policy's decisions depend only on the
//!   past, so rerunning a prefix from scratch must reproduce the full
//!   run's first outcomes exactly. (Belady is exempt: its lookahead
//!   changes with the horizon.)
//! * **Duplicate-access idempotence.** The cache probes the set before
//!   consulting the policy, so an access immediately repeated must hit —
//!   for every policy, including the oracles.
//! * **Set-permutation invariance.** Relabeling set indices (keeping
//!   tags) must not change any outcome for policies that treat sets
//!   uniformly.

use crate::case::TraceCase;
use crate::harness::{run_case, Violation};
use crate::zoo::NamedPolicy;

fn violation(check: &str, p: &NamedPolicy, case: &TraceCase, detail: String) -> Violation {
    Violation {
        check: check.to_string(),
        policy: p.name.clone(),
        case_name: case.name.clone(),
        detail,
        minimized: None,
    }
}

/// Prefix closure for online policies: outcomes of a fresh run over the
/// first `n` accesses equal the first `n` outcomes of the full run.
/// Checked at 1/4, 1/2 and 3/4 of the trace.
pub fn check_prefix_closure(case: &TraceCase, policies: &[NamedPolicy]) -> Vec<Violation> {
    let n = case.num_accesses();
    if n < 4 {
        return Vec::new();
    }
    let mut violations = Vec::new();
    for p in policies.iter().filter(|p| p.online) {
        let full = run_case(case, p.build(case));
        for cut in [n / 4, n / 2, 3 * n / 4] {
            let prefix = case.prefix(cut);
            // Configure the policy from the *full* case (GRASP's region
            // boundaries depend on the line universe); only the drive is
            // truncated.
            let partial = run_case(&prefix, p.build(case));
            if partial.outcomes != full.outcomes[..cut] {
                let diverged = partial
                    .outcomes
                    .iter()
                    .zip(&full.outcomes[..cut])
                    .position(|(a, b)| a != b);
                violations.push(violation(
                    "prefix-closure",
                    p,
                    case,
                    format!(
                        "rerun of the first {cut} accesses diverged from the full run at {diverged:?}"
                    ),
                ));
            }
        }
    }
    violations
}

/// Duplicate-access idempotence: an access repeated back-to-back hits,
/// regardless of policy (the probe precedes every policy decision).
pub fn check_duplicate_hits(case: &TraceCase, policies: &[NamedPolicy]) -> Vec<Violation> {
    if case.num_accesses() == 0 {
        return Vec::new();
    }
    let (dup_case, is_dup) = case.with_duplicates(3);
    let mut violations = Vec::new();
    for p in policies {
        let run = run_case(&dup_case, p.build(&dup_case));
        // `is_dup` flags accesses only; outcomes are per access too.
        let missed_dup = run
            .outcomes
            .iter()
            .zip(&is_dup)
            .position(|(&hit, &dup)| dup && !hit);
        if let Some(i) = missed_dup {
            violations.push(violation(
                "duplicate-hit",
                p,
                case,
                format!("immediately repeated access {i} missed"),
            ));
        }
    }
    violations
}

/// Set-permutation invariance for set-symmetric policies: rotating the set
/// index (keeping tag bits) changes no outcome.
pub fn check_set_permutation(case: &TraceCase, policies: &[NamedPolicy]) -> Vec<Violation> {
    if case.sets < 2 {
        return Vec::new();
    }
    // Rotation by one — a derangement, so every access changes sets.
    let perm: Vec<usize> = (0..case.sets).map(|s| (s + 1) % case.sets).collect();
    let permuted = case.permute_sets(&perm);
    let mut violations = Vec::new();
    for p in policies.iter().filter(|p| p.set_symmetric) {
        let original = run_case(case, p.build(case));
        let rotated = run_case(&permuted, p.build(&permuted));
        if original.outcomes != rotated.outcomes {
            let diverged = original
                .outcomes
                .iter()
                .zip(&rotated.outcomes)
                .position(|(a, b)| a != b);
            violations.push(violation(
                "set-permutation",
                p,
                case,
                format!("outcomes changed under set rotation, first at {diverged:?}"),
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn clean_policies_pass_all_metamorphic_checks() {
        let zoo = NamedPolicy::zoo();
        for case in [
            gen::random_trace(4, 4, 11, 40, 600),
            gen::mixed(2, 4, 5, 400),
        ] {
            assert_eq!(check_prefix_closure(&case, &zoo), vec![]);
            assert_eq!(check_duplicate_hits(&case, &zoo), vec![]);
            assert_eq!(check_set_permutation(&case, &zoo), vec![]);
        }
    }

    #[test]
    fn short_and_single_set_cases_are_skipped_gracefully() {
        let tiny = TraceCase::from_lines("tiny", 1, 2, &[1, 2]);
        assert_eq!(check_prefix_closure(&tiny, &NamedPolicy::zoo()), vec![]);
        assert_eq!(check_set_permutation(&tiny, &NamedPolicy::zoo()), vec![]);
    }
}
