//! Adversarial synthetic trace generators.
//!
//! Each generator targets a known replacement-policy failure mode: scans
//! flush recency state, thrashing loops sized at ways±1 straddle the
//! capacity cliff, and mixed streaming/reuse interleavings are the access
//! shape graph kernels actually produce (regular offsets array + irregular
//! vertex data). All generators are deterministic in their seed.

use crate::case::TraceCase;
use popt_sim::AccessMeta;
use popt_trace::{AccessKind, RegionClass, SiteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn meta(line: u64, site: u32, write: bool, irregular: bool) -> AccessMeta {
    AccessMeta {
        line,
        site: SiteId(site),
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        class: if irregular {
            RegionClass::Irregular
        } else {
            RegionClass::Streaming
        },
    }
}

/// Sequential sweep over `universe` lines, repeated `rounds` times — the
/// classic scan that defeats LRU and trains scan-resistant policies.
pub fn scan(sets: usize, ways: usize, universe: u64, rounds: usize) -> TraceCase {
    let metas = (0..rounds)
        .flat_map(|_| 0..universe)
        .map(|l| meta(l, 1, false, false))
        .collect();
    TraceCase::from_metas(&format!("scan{universe}x{rounds}"), sets, ways, metas)
}

/// Cyclic loop over `ways + delta` lines that all map to set 0 — one more
/// line than fits (`delta = 1`) thrashes LRU to zero hits; one fewer
/// (`delta = -1`) must hit every access after warmup.
pub fn thrash(sets: usize, ways: usize, delta: i64, len: usize) -> TraceCase {
    let loop_lines = (ways as i64 + delta).max(1) as u64;
    let metas = (0..len)
        .map(|i| meta((i as u64 % loop_lines) * sets as u64, 2, false, true))
        .collect();
    TraceCase::from_metas(
        &format!("thrash{}{}", if delta >= 0 { "+" } else { "" }, delta),
        sets,
        ways,
        metas,
    )
}

/// Graph-kernel-shaped mix: a streaming sweep (distinct lines, one pass)
/// interleaved with skewed irregular reuse over a hot vertex region, with
/// occasional writes. Sites separate the streams the way distinct loads in
/// a loop nest would.
pub fn mixed(sets: usize, ways: usize, seed: u64, len: usize) -> TraceCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let hot = (sets * ways) as u64 / 2 + 1;
    let cold = (sets * ways) as u64 * 8;
    let mut stream_next = 1_000_000u64;
    let metas = (0..len)
        .map(|_| {
            if rng.gen_bool(0.4) {
                // Streaming: fresh line, never revisited.
                stream_next += 1;
                meta(stream_next, 3, false, false)
            } else if rng.gen_bool(0.75) {
                // Hot irregular reuse, skewed toward low lines.
                let a = rng.gen_range(0..hot);
                let b = rng.gen_range(0..hot);
                meta(a.min(b), 4, rng.gen_bool(0.3), true)
            } else {
                // Cold irregular tail.
                meta(rng.gen_range(0..cold), 5, false, true)
            }
        })
        .collect();
    TraceCase::from_metas(&format!("mixed/s{seed}"), sets, ways, metas)
}

/// Uniform random lines over `universe`, random sites and kinds — the
/// unstructured baseline fuzz case.
pub fn random_trace(sets: usize, ways: usize, seed: u64, universe: u64, len: usize) -> TraceCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let metas = (0..len)
        .map(|_| {
            meta(
                rng.gen_range(0..universe),
                rng.gen_range(0u32..8),
                rng.gen_bool(0.25),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    TraceCase::from_metas(&format!("rand{universe}/s{seed}"), sets, ways, metas)
}

/// The standard adversarial batch for one geometry and seed: scans sized
/// at and beyond capacity, thrash loops at ways±1, two graph-shaped mixes,
/// and dense/sparse random traces.
pub fn adversarial_cases(sets: usize, ways: usize, seed: u64) -> Vec<TraceCase> {
    let capacity = (sets * ways) as u64;
    vec![
        scan(sets, ways, capacity * 2, 3),
        scan(sets, ways, capacity.max(2) - 1, 4),
        thrash(sets, ways, 1, 40 * ways),
        thrash(sets, ways, -1, 40 * ways),
        mixed(sets, ways, seed, 60 * sets * ways),
        mixed(sets, ways, seed ^ 0xDEAD_BEEF, 60 * sets * ways),
        random_trace(sets, ways, seed, capacity / 2 + 2, 50 * sets * ways),
        random_trace(sets, ways, seed, capacity * 4, 50 * sets * ways),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_in_seed() {
        assert_eq!(mixed(2, 4, 9, 500), mixed(2, 4, 9, 500));
        assert_ne!(mixed(2, 4, 9, 500), mixed(2, 4, 10, 500));
        assert_eq!(
            random_trace(2, 4, 1, 64, 200),
            random_trace(2, 4, 1, 64, 200)
        );
    }

    #[test]
    fn thrash_lines_stay_in_one_set() {
        let case = thrash(4, 4, 1, 100);
        assert!(case.lines().iter().all(|l| l % 4 == 0));
        // ways + 1 distinct lines.
        let mut distinct = case.lines();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn adversarial_batch_has_distinct_names() {
        let cases = adversarial_cases(2, 4, 7);
        let mut names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "case names must be unique");
        assert!(cases.iter().all(|c| c.num_accesses() > 0));
    }
}
