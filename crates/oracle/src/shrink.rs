//! Greedy delta-debugging minimizer for line traces.
//!
//! The vendored `proptest` shim is deterministic but does not shrink, so
//! the harness carries its own minimizer: given a failing line trace and a
//! predicate that recognizes the failure, remove ever-smaller chunks while
//! the failure persists. The result is the witness that goes into a
//! violation report and, once fixed, into a regression test.

/// Upper bound on predicate evaluations per minimization, so a slow
/// predicate on a long trace cannot stall the suite.
const MAX_PROBES: usize = 4000;

/// Minimizes `lines` while `fails` keeps returning `true`.
///
/// `fails(&lines)` must be `true` on entry (the unshrunk witness must
/// fail); the returned trace also satisfies `fails`. Deterministic: equal
/// inputs give equal witnesses.
///
/// # Panics
///
/// Panics if the initial trace does not fail.
pub fn minimize_lines(lines: &[u64], mut fails: impl FnMut(&[u64]) -> bool) -> Vec<u64> {
    assert!(fails(lines), "minimize_lines needs a failing input");
    let mut current = lines.to_vec();
    let mut probes = 0usize;
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() {
            if probes >= MAX_PROBES {
                return current;
            }
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            probes += 1;
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Retry the same start: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                return current;
            }
            // One more single-element sweep may unlock further removals.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_essential_pair() {
        // Failure: the trace contains both a 7 and a 9.
        let lines: Vec<u64> = (0..100).collect();
        let min = minimize_lines(&lines, |c| c.contains(&7) && c.contains(&9));
        assert_eq!(min, vec![7, 9]);
    }

    #[test]
    fn preserves_order_of_kept_elements() {
        let lines = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let min = minimize_lines(&lines, |c| {
            let a = c.iter().position(|&x| x == 9);
            let b = c.iter().position(|&x| x == 2);
            matches!((a, b), (Some(i), Some(j)) if i < j)
        });
        assert_eq!(min, vec![9, 2]);
    }

    #[test]
    fn single_element_failures_shrink_to_one() {
        let lines: Vec<u64> = (0..64).collect();
        let min = minimize_lines(&lines, |c| c.iter().any(|&x| x == 42));
        assert_eq!(min, vec![42]);
    }

    #[test]
    #[should_panic(expected = "failing input")]
    fn rejects_passing_inputs() {
        let _ = minimize_lines(&[1, 2, 3], |_| false);
    }

    #[test]
    fn is_deterministic() {
        let lines: Vec<u64> = (0..200).map(|i| i % 13).collect();
        let f = |c: &[u64]| c.iter().filter(|&&x| x == 5).count() >= 3;
        assert_eq!(minimize_lines(&lines, f), minimize_lines(&lines, f));
    }
}
