//! CSR-segmented (1-D tiled) pull PageRank — the Figure 13 interaction
//! study (Zhang et al. [57]).
//!
//! The kernel runs once per tile; within tile `t` every irregular
//! `srcData` access falls in the tile's source range, shrinking the
//! random-access footprint by the tile count. For P-OPT, each tile gets a
//! range-scoped Rereference Matrix
//! ([`popt_core::RerefMatrix::build_range`]), so the resident column also
//! shrinks — the mutual-enablement the paper highlights.

use crate::common::{Emit, IrregSpec, TracePlan, EDGE_INSTRS, VERTEX_INSTRS};
use crate::pagerank::sites;
use popt_graph::tiling::Tile;
use popt_graph::{Graph, VertexId};
use popt_trace::{AddressSpace, RegionClass, TraceSink};

/// Lays out the tiled kernel's arrays. The layout matches
/// [`crate::pagerank::plan`] (OA/NA sized for the whole graph; per-tile
/// OA/NA reuse the same streaming regions since their locality behavior is
/// identical).
pub fn plan(g: &Graph) -> TracePlan {
    let n = g.num_vertices() as u64;
    let mut space = AddressSpace::new();
    let _oa = space.alloc("oa", n + 1, 8, RegionClass::Streaming);
    let _na = space.alloc("na", g.num_edges() as u64, 4, RegionClass::Streaming);
    let src = space.alloc("srcData", n, 4, RegionClass::Irregular);
    let _dst = space.alloc("dstData", n, 4, RegionClass::Streaming);
    TracePlan {
        space,
        irregs: vec![IrregSpec {
            region: src,
            vertices_per_elem: 1,
        }],
    }
}

/// Emits one full PageRank iteration executed tile by tile.
///
/// Epoch semantics: each tile is its own pass over the destinations, so an
/// `IterationBegin` fires per tile and `CurrentVertex` tracks the tile's
/// destination scan — exactly what a per-tile Rereference Matrix
/// quantizes.
pub fn trace<S: TraceSink>(g: &Graph, tiles: &[Tile], plan: &TracePlan, mut sink: S) {
    let regions = plan.region_ids();
    let (oa, na, src_data, dst_data) = (regions[0], regions[1], regions[2], regions[3]);
    let n = g.num_vertices() as VertexId;
    for tile in tiles {
        let mut emit = Emit {
            space: &plan.space,
            sink: &mut sink,
        };
        emit.iteration_begin();
        let mut edge_cursor = 0u64;
        for dst in 0..n {
            emit.current_vertex(dst);
            let neighbors = tile.csc.neighbors(dst);
            if neighbors.is_empty() {
                emit.instructions(1);
                continue;
            }
            emit.read(oa, dst as u64, sites::OA);
            emit.instructions(VERTEX_INSTRS);
            for &src in neighbors {
                debug_assert!(src >= tile.src_begin && src < tile.src_end);
                emit.read(na, edge_cursor, sites::NA);
                emit.read(src_data, src as u64, sites::SRC);
                emit.instructions(EDGE_INSTRS);
                edge_cursor += 1;
            }
            emit.write(dst_data, dst as u64, sites::DST);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_graph::{generators, tiling};
    use popt_trace::{CountingSink, RecordingSink};

    #[test]
    fn tiled_trace_covers_every_edge_exactly_once() {
        let g = generators::uniform_random(128, 1024, 4);
        let p = plan(&g);
        for k in [1usize, 2, 4] {
            let tiles = tiling::segment(&g, k);
            let mut sink = CountingSink::new();
            trace(&g, &tiles, &p, &mut sink);
            // srcData + NA per edge; OA per (tile, dst-with-neighbors).
            let e = g.num_edges() as u64;
            assert!(sink.reads >= 2 * e, "tiles {k}");
            assert_eq!(sink.iterations, k as u64);
        }
    }

    #[test]
    fn irregular_accesses_stay_in_tile_ranges() {
        let g = generators::uniform_random(64, 512, 7);
        let p = plan(&g);
        let tiles = tiling::segment(&g, 4);
        let mut rec = RecordingSink::new();
        trace(&g, &tiles, &p, &mut rec);
        let src_region = &p.space.regions()[2];
        // Partition the recorded srcData reads by IterationBegin markers.
        let mut tile_idx = 0usize;
        let mut started = false;
        for ev in rec.events() {
            match ev {
                popt_trace::TraceEvent::IterationBegin => {
                    if started {
                        tile_idx += 1;
                    }
                    started = true;
                }
                popt_trace::TraceEvent::Access(a) if src_region.contains(a.addr) => {
                    let v = ((a.addr - src_region.base()) / 4) as u32;
                    let t = &tiles[tile_idx];
                    assert!(v >= t.src_begin && v < t.src_end);
                }
                _ => {}
            }
        }
        assert_eq!(tile_idx, 3);
    }
}
