//! Maximal Independent Set (Luby/Ligra style) — pull-mostly, 4 B irregular
//! state plus a frontier bit (Table II).
//!
//! Each vertex draws a random priority; an undecided vertex joins the set
//! when its priority beats every undecided neighbor's, and neighbors of
//! set members drop out. "Iteratively processes vertex subsets to estimate
//! the maximal independent set" (Section VI).

use crate::common::{Emit, IrregSpec, TracePlan, EDGE_INSTRS, VERTEX_INSTRS};
use popt_graph::{Frontier, Graph, VertexId};
use popt_trace::{AddressSpace, RegionClass, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Access-site IDs.
pub mod sites {
    /// Offsets-array read.
    pub const OA: u32 = 50;
    /// Neighbor-array read.
    pub const NA: u32 = 51;
    /// Frontier (undecided bit-vector) word read (irregular).
    pub const FRONTIER: u32 = 52;
    /// Neighbor priority/state irregular read.
    pub const STATE: u32 = 53;
    /// Own-state write.
    pub const STATE_WRITE: u32 = 54;
}

/// Per-vertex decision state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Not yet decided.
    Undecided,
    /// In the independent set.
    In,
    /// Excluded (a neighbor is in the set).
    Out,
}

/// Evolving state, exposed for iteration sampling.
#[derive(Debug, Clone)]
pub struct State {
    /// Random priorities (a permutation of 0..n).
    pub priorities: Vec<u32>,
    /// Decision per vertex.
    pub decisions: Vec<Decision>,
    /// Undecided vertices (the active frontier).
    pub frontier: Frontier,
    /// Rounds applied.
    pub round: u32,
}

impl State {
    /// Initializes with a seeded random priority permutation.
    pub fn new(g: &Graph, seed: u64) -> Self {
        let n = g.num_vertices();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut priorities: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i as u64) as usize;
            priorities.swap(i, j);
        }
        State {
            priorities,
            decisions: vec![Decision::Undecided; n],
            frontier: Frontier::full(n),
            round: 0,
        }
    }

    /// Neighbors on the undirected view (MIS is defined on it).
    fn undirected_neighbors<'a>(g: &'a Graph, v: VertexId) -> impl Iterator<Item = VertexId> + 'a {
        g.out_neighbors(v).iter().chain(g.in_neighbors(v)).copied()
    }

    /// One Luby round: winners join, their neighbors drop out.
    pub fn step(&mut self, g: &Graph) {
        self.round += 1;
        let mut winners = Vec::new();
        for v in self.frontier.iter() {
            let pv = self.priorities[v as usize];
            let beaten = Self::undirected_neighbors(g, v).any(|u| {
                u != v
                    && self.decisions[u as usize] == Decision::Undecided
                    && self.priorities[u as usize] < pv
            });
            if !beaten {
                winners.push(v);
            }
        }
        for &v in &winners {
            if self.decisions[v as usize] != Decision::Undecided {
                continue; // a lower-priority winner neighbor got here first
            }
            self.decisions[v as usize] = Decision::In;
            self.frontier.remove(v);
            for u in Self::undirected_neighbors(g, v).collect::<Vec<_>>() {
                if self.decisions[u as usize] == Decision::Undecided {
                    self.decisions[u as usize] = Decision::Out;
                    self.frontier.remove(u);
                }
            }
        }
    }
}

/// Computes a maximal independent set; returns membership per vertex.
pub fn run(g: &Graph, seed: u64) -> Vec<bool> {
    let mut state = State::new(g, seed);
    while !state.frontier.is_empty() {
        state.step(g);
    }
    state.decisions.iter().map(|&d| d == Decision::In).collect()
}

/// Lays out the arrays: streaming OA/NA; irregular per-vertex state (4 B)
/// and the undecided-set frontier words.
pub fn plan(g: &Graph) -> TracePlan {
    let n = g.num_vertices() as u64;
    let mut space = AddressSpace::new();
    let _oa = space.alloc("oa", n + 1, 8, RegionClass::Streaming);
    let _na = space.alloc("na", g.num_edges() as u64, 4, RegionClass::Streaming);
    let state = space.alloc("state", n, 4, RegionClass::Irregular);
    let frontier = space.alloc("frontier", n.div_ceil(64), 8, RegionClass::Irregular);
    TracePlan {
        space,
        irregs: vec![
            IrregSpec {
                region: state,
                vertices_per_elem: 1,
            },
            IrregSpec {
                region: frontier,
                vertices_per_elem: 64,
            },
        ],
    }
}

/// Warm-up rounds before the sampled trace iteration.
pub const SAMPLED_ROUND: usize = 1;

/// Emits the access stream of a sampled pull round over the undecided set.
pub fn trace<S: TraceSink>(g: &Graph, plan: &TracePlan, sink: S) {
    let mut state = State::new(g, 0x715);
    for _ in 0..SAMPLED_ROUND {
        if state.frontier.is_empty() {
            break;
        }
        state.step(g);
    }
    let regions = plan.region_ids();
    let (oa, na, st, frontier) = (regions[0], regions[1], regions[2], regions[3]);
    let mut emit = Emit {
        space: &plan.space,
        sink,
    };
    emit.iteration_begin();
    let n = g.num_vertices() as VertexId;
    for dst in 0..n {
        emit.current_vertex(dst);
        if state.decisions[dst as usize] != Decision::Undecided {
            emit.read(frontier, Frontier::word_index(dst) as u64, sites::FRONTIER);
            emit.instructions(1);
            continue;
        }
        emit.read(oa, dst as u64, sites::OA);
        emit.instructions(VERTEX_INSTRS);
        let base = g.in_csr().offsets()[dst as usize];
        for (i, &src) in g.in_neighbors(dst).iter().enumerate() {
            emit.read(na, base + i as u64, sites::NA);
            emit.read(frontier, Frontier::word_index(src) as u64, sites::FRONTIER);
            if state.frontier.contains(src) {
                emit.read(st, src as u64, sites::STATE);
            }
            emit.instructions(EDGE_INSTRS);
        }
        emit.write(st, dst as u64, sites::STATE_WRITE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_graph::generators;
    use popt_trace::CountingSink;

    fn verify_mis(g: &Graph, in_set: &[bool]) {
        // Independence: no edge joins two set members.
        for (s, d) in g.out_csr().iter_edges() {
            if s != d {
                assert!(
                    !(in_set[s as usize] && in_set[d as usize]),
                    "edge ({s},{d}) in set"
                );
            }
        }
        // Maximality: every excluded vertex has a set neighbor.
        for v in 0..g.num_vertices() as VertexId {
            if !in_set[v as usize] {
                let has = g
                    .out_neighbors(v)
                    .iter()
                    .chain(g.in_neighbors(v))
                    .any(|&u| in_set[u as usize]);
                assert!(has, "vertex {v} excluded without a set neighbor");
            }
        }
    }

    #[test]
    fn produces_a_valid_mis_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::uniform_random(300, 1500, seed);
            let in_set = run(&g, seed * 7 + 1);
            verify_mis(&g, &in_set);
        }
    }

    #[test]
    fn produces_a_valid_mis_on_skewed_graphs() {
        let g = generators::rmat(9, 4096, generators::RmatParams::KRONECKER, 2);
        let in_set = run(&g, 5);
        verify_mis(&g, &in_set);
    }

    #[test]
    fn edgeless_graph_selects_everyone() {
        let g = Graph::from_edges(10, &[]).unwrap();
        let in_set = run(&g, 1);
        assert!(in_set.iter().all(|&b| b));
    }

    #[test]
    fn trace_shrinks_with_the_frontier() {
        let g = generators::uniform_random(256, 2048, 3);
        let p = plan(&g);
        let mut sink = CountingSink::new();
        trace(&g, &p, &mut sink);
        // After one round many vertices are decided: fewer than one OA read
        // per vertex plus the full edge scan.
        assert!(sink.reads < 2 * (g.num_vertices() as u64 + 2 * g.num_edges() as u64));
        assert!(sink.reads > 0);
    }
}
