//! HATS-BDFS traversal scheduling (Mukkara et al. [40]) — the Figure 12b
//! comparator.
//!
//! HATS reorders the *visit order* of the outer loop at run time with a
//! Bounded Depth-First Search: after processing a vertex, BDFS dives into
//! its not-yet-visited neighbors up to a depth bound, so consecutive outer
//! iterations touch overlapping neighborhoods. On community-structured
//! graphs this clusters irregular accesses; on graphs without community
//! structure it scrambles an already-reasonable vertex order — exactly the
//! sensitivity the paper contrasts against P-OPT's structure-agnostic
//! gains. Per the paper we model an *aggressive* HATS with zero scheduling
//! overhead: only the visit order changes.

use popt_graph::{Graph, VertexId};

/// Default BDFS depth bound (the HATS paper's sweet spot of 8).
pub const DEFAULT_DEPTH_BOUND: u32 = 8;

/// Computes the BDFS visit order over the pull traversal's destination
/// vertices (exploring incoming neighbors, since those are the vertices
/// whose data a pull iteration reuses).
///
/// Every vertex appears exactly once; unreached vertices seed new DFS
/// roots in ascending ID order.
pub fn bdfs_order(g: &Graph, depth_bound: u32) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(VertexId, u32)> = Vec::new();
    for root in 0..n as VertexId {
        if visited[root as usize] {
            continue;
        }
        stack.push((root, 0));
        visited[root as usize] = true;
        while let Some((v, depth)) = stack.pop() {
            order.push(v);
            if depth >= depth_bound {
                continue;
            }
            // Reverse order keeps the lowest-ID neighbor on top (visited
            // next), mirroring a sequential DFS.
            for &u in g.in_neighbors(v).iter().rev() {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    stack.push((u, depth + 1));
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_graph::generators;

    fn is_permutation(order: &[VertexId], n: usize) -> bool {
        let mut seen = vec![false; n];
        if order.len() != n {
            return false;
        }
        for &v in order {
            if seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        true
    }

    #[test]
    fn order_is_a_permutation() {
        let g = generators::uniform_random(500, 3000, 2);
        let order = bdfs_order(&g, DEFAULT_DEPTH_BOUND);
        assert!(is_permutation(&order, 500));
    }

    #[test]
    fn depth_zero_is_the_identity() {
        let g = generators::uniform_random(100, 600, 1);
        let order = bdfs_order(&g, 0);
        assert_eq!(order, (0..100u32).collect::<Vec<_>>());
    }

    #[test]
    fn community_graphs_get_clustered_visits() {
        // Average |id distance| between consecutive visited vertices'
        // neighborhoods should shrink relative to sequential order on a
        // community graph: measure the mean distance between consecutive
        // scheduled vertices' community blocks.
        let communities = 32;
        let n = 2048;
        let g = generators::community(n, 16 * n, communities, 0.95, 5);
        let order = bdfs_order(&g, DEFAULT_DEPTH_BOUND);
        let block = n / communities;
        let switches = |seq: &[VertexId]| -> usize {
            seq.windows(2)
                .filter(|w| (w[0] as usize / block) != (w[1] as usize / block))
                .count()
        };
        let sequential: Vec<VertexId> = (0..n as u32).collect();
        // BDFS on a community graph should not switch communities much more
        // than the sequential order does (it dives within communities).
        assert!(
            switches(&order) < 4 * switches(&sequential) + n / 4,
            "BDFS switched communities too often: {} vs sequential {}",
            switches(&order),
            switches(&sequential)
        );
        assert!(is_permutation(&order, n));
    }
}
