//! Radii estimation via concurrent BFS (Ligra) — pull-mostly, 8 B
//! irregular bitmasks plus a frontier bit (Table II).
//!
//! 64 BFS traversals run simultaneously, one per bit of a `u64` visitor
//! mask; a vertex's eccentricity estimate is the last iteration on which
//! its mask grew, and the graph radius estimate is the maximum. The pull
//! iteration ORs `masks[src]` over incoming active neighbors — irregular
//! 8 B reads.
//!
//! Direction switching (Beamer et al.): iterations with a dense frontier
//! run pull, sparse ones push. On the high-diameter HBUBL mesh the
//! frontier never densifies, which is why the paper excludes Radii×HBUBL
//! (Section VI) — [`has_pull_iteration`] lets the harness apply the same
//! rule mechanically.

use crate::common::{Emit, IrregSpec, TracePlan, EDGE_INSTRS, VERTEX_INSTRS};
use popt_graph::{Frontier, Graph, VertexId};
use popt_trace::{AddressSpace, RegionClass, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of concurrent BFS traversals (bits of the visitor mask).
pub const NUM_SAMPLES: usize = 64;

/// A pull iteration is used when frontier density is at least this
/// (direction switching threshold).
pub const PULL_THRESHOLD: f64 = 0.05;

/// Access-site IDs.
pub mod sites {
    /// Offsets-array read.
    pub const OA: u32 = 40;
    /// Neighbor-array read.
    pub const NA: u32 = 41;
    /// Frontier word read (irregular).
    pub const FRONTIER: u32 = 42;
    /// `masks[src]` irregular read.
    pub const MASK: u32 = 43;
    /// `masks[dst]` streaming read-modify-write.
    pub const MASK_DST: u32 = 44;
}

/// Result of a Radii run.
#[derive(Debug, Clone, PartialEq)]
pub struct RadiiResult {
    /// Per-vertex eccentricity estimates (0 for unreached vertices).
    pub radii: Vec<u32>,
    /// Estimated graph radius (max estimate).
    pub radius: u32,
    /// Frontier density per iteration — used for direction switching.
    pub densities: Vec<f64>,
}

/// Evolving state, exposed for iteration sampling.
#[derive(Debug, Clone)]
pub struct State {
    /// Visitor bitmasks.
    pub masks: Vec<u64>,
    /// Vertices whose mask changed last iteration.
    pub frontier: Frontier,
    /// Per-vertex eccentricity estimates.
    pub radii: Vec<u32>,
    /// Iterations applied.
    pub iteration: u32,
}

impl State {
    /// Seeds [`NUM_SAMPLES`] random source vertices.
    pub fn new(g: &Graph, seed: u64) -> Self {
        let n = g.num_vertices();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut masks = vec![0u64; n];
        let mut frontier = Frontier::new(n);
        for bit in 0..NUM_SAMPLES.min(n) {
            let v = rng.gen_range(0..n as u64) as VertexId;
            masks[v as usize] |= 1u64 << bit;
            frontier.insert(v);
        }
        State {
            masks,
            frontier,
            radii: vec![0; n],
            iteration: 0,
        }
    }

    /// One pull iteration: each vertex ORs in the masks of its active
    /// incoming neighbors.
    pub fn step(&mut self, g: &Graph) {
        let n = g.num_vertices();
        self.iteration += 1;
        let mut next = Frontier::new(n);
        let prev_masks = self.masks.clone();
        for dst in 0..n as VertexId {
            let mut m = prev_masks[dst as usize];
            for &src in g.in_neighbors(dst) {
                if self.frontier.contains(src) {
                    m |= prev_masks[src as usize];
                }
            }
            if m != prev_masks[dst as usize] {
                self.masks[dst as usize] = m;
                self.radii[dst as usize] = self.iteration;
                next.insert(dst);
            }
        }
        self.frontier = next;
    }
}

/// Runs the concurrent BFS to completion (or `max_iterations`).
pub fn run(g: &Graph, seed: u64, max_iterations: usize) -> RadiiResult {
    let mut state = State::new(g, seed);
    let mut densities = Vec::new();
    for _ in 0..max_iterations {
        if state.frontier.is_empty() {
            break;
        }
        densities.push(state.frontier.density());
        state.step(g);
    }
    let radius = state.radii.iter().copied().max().unwrap_or(0);
    RadiiResult {
        radii: state.radii,
        radius,
        densities,
    }
}

/// Iterations direction switching waits for the frontier to densify before
/// the run is declared push-bound. On low-diameter graphs the concurrent
/// BFS densifies within a handful of levels; a high-diameter graph grows
/// its frontiers only linearly and stays below [`PULL_THRESHOLD`]
/// throughout this window.
pub const PULL_SEARCH_LIMIT: usize = 16;

/// Finds the first pull-worthy iteration: steps the concurrent BFS until
/// the frontier density reaches [`PULL_THRESHOLD`] (direction switching
/// would go bottom-up/pull there), giving up after
/// [`PULL_SEARCH_LIMIT`] iterations or when the frontier dies.
///
/// `None` is the mechanical form of the paper's exclusion rule: "its high
/// diameter causes Radii to never switch to a pull iteration" (Section VI,
/// on Radii×HBUBL).
pub fn first_pull_state(g: &Graph, seed: u64) -> Option<State> {
    let mut state = State::new(g, seed);
    for _ in 0..PULL_SEARCH_LIMIT {
        if state.frontier.is_empty() {
            return None;
        }
        if state.frontier.density() >= PULL_THRESHOLD {
            return Some(state);
        }
        state.step(g);
    }
    None
}

/// Whether a pull iteration exists to sample (the Figure 10 inclusion
/// rule).
pub fn has_pull_iteration(g: &Graph, seed: u64) -> bool {
    first_pull_state(g, seed).is_some()
}

/// Lays out the arrays: streaming OA/NA, irregular masks (8 B) and frontier
/// words.
pub fn plan(g: &Graph) -> TracePlan {
    let n = g.num_vertices() as u64;
    let mut space = AddressSpace::new();
    let _oa = space.alloc("oa", n + 1, 8, RegionClass::Streaming);
    let _na = space.alloc("na", g.num_edges() as u64, 4, RegionClass::Streaming);
    let masks = space.alloc("masks", n, 8, RegionClass::Irregular);
    let frontier = space.alloc("frontier", n.div_ceil(64), 8, RegionClass::Irregular);
    TracePlan {
        space,
        irregs: vec![
            IrregSpec {
                region: masks,
                vertices_per_elem: 1,
            },
            IrregSpec {
                region: frontier,
                vertices_per_elem: 64,
            },
        ],
    }
}

/// RNG seed for the sampled-trace sources.
pub const TRACE_SEED: u64 = 0x5eed_0000_0000_0001;

/// Emits the access stream of the first *pull* iteration (the iteration
/// direction switching would run bottom-up — the paper samples pull
/// iterations, Section VI). Falls back to the initial state when no pull
/// iteration exists; callers should gate on [`has_pull_iteration`] first.
pub fn trace<S: TraceSink>(g: &Graph, plan: &TracePlan, sink: S) {
    let state = first_pull_state(g, TRACE_SEED).unwrap_or_else(|| State::new(g, TRACE_SEED));
    trace_iteration(g, plan, &state, sink);
}

/// Emits one pull iteration's access stream from `state`.
pub fn trace_iteration<S: TraceSink>(g: &Graph, plan: &TracePlan, state: &State, sink: S) {
    let regions = plan.region_ids();
    let (oa, na, masks, frontier) = (regions[0], regions[1], regions[2], regions[3]);
    let mut emit = Emit {
        space: &plan.space,
        sink,
    };
    emit.iteration_begin();
    let n = g.num_vertices() as VertexId;
    for dst in 0..n {
        emit.current_vertex(dst);
        emit.read(oa, dst as u64, sites::OA);
        emit.read(masks, dst as u64, sites::MASK_DST);
        emit.instructions(VERTEX_INSTRS);
        let base = g.in_csr().offsets()[dst as usize];
        let mut changed = false;
        for (i, &src) in g.in_neighbors(dst).iter().enumerate() {
            emit.read(na, base + i as u64, sites::NA);
            emit.read(frontier, Frontier::word_index(src) as u64, sites::FRONTIER);
            if state.frontier.contains(src) {
                emit.read(masks, src as u64, sites::MASK);
                changed |= state.masks[src as usize] & !state.masks[dst as usize] != 0;
            }
            emit.instructions(EDGE_INSTRS);
        }
        if changed {
            emit.write(masks, dst as u64, sites::MASK_DST);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_graph::{generators, stats};
    use popt_trace::CountingSink;

    #[test]
    fn radius_estimate_tracks_true_diameter_ordering() {
        let mesh = generators::mesh(16, 0, 0);
        let dense = generators::uniform_random(256, 4096, 3);
        let r_mesh = run(&mesh, 7, 256).radius;
        let r_dense = run(&dense, 7, 256).radius;
        assert!(
            r_mesh > r_dense,
            "high-diameter mesh estimate {r_mesh} should exceed dense graph {r_dense}"
        );
        let approx = stats::approximate_diameter(&mesh, 4, 9) as u32;
        assert!(
            r_mesh <= approx + 2,
            "estimate {r_mesh} should not exceed diameter {approx} by much"
        );
    }

    #[test]
    fn hbubl_like_meshes_fail_the_pull_sampling_rule() {
        // A torus large relative to the 64 sources never densifies within
        // the search window; the uniform graph does within a few BFS
        // levels.
        let mesh = generators::mesh(408, 0, 0);
        let urand = generators::uniform_random(16_384, 65_536, 3);
        assert!(!has_pull_iteration(&mesh, 1), "mesh should be push-bound");
        assert!(has_pull_iteration(&urand, 1), "urand should densify");
        let state = first_pull_state(&urand, 1).expect("pull state");
        assert!(state.frontier.density() >= PULL_THRESHOLD);
    }

    #[test]
    fn trace_shape_is_pull_with_two_irregular_streams() {
        let g = generators::uniform_random(128, 512, 11);
        let p = plan(&g);
        assert_eq!(p.irregs.len(), 2);
        let mut sink = CountingSink::new();
        trace(&g, &p, &mut sink);
        let v = g.num_vertices() as u64;
        let e = g.num_edges() as u64;
        // OA + masks[dst] per vertex, NA + frontier per edge, masks[src] for
        // active edges only.
        assert!(sink.reads >= 2 * v + 2 * e);
        assert!(sink.reads <= 2 * v + 3 * e);
    }

    #[test]
    fn masks_only_grow() {
        let g = generators::uniform_random(200, 1000, 5);
        let mut state = State::new(&g, 3);
        let before = state.masks.clone();
        state.step(&g);
        for v in 0..200 {
            assert_eq!(
                state.masks[v] & before[v],
                before[v],
                "mask lost bits at {v}"
            );
        }
    }
}
