//! Graph kernels of the P-OPT evaluation (paper Table II), each with:
//!
//! * `run` — the real computation (used for correctness tests and for the
//!   native wall-clock baseline of Table IV), and
//! * `trace` — an instrumented execution emitting the memory-access stream
//!   a Pin tool would observe: streaming accesses to the CSR/CSC arrays and
//!   per-vertex result data, irregular accesses to neighbor-indexed vertex
//!   data (and frontier bit-vectors), `CurrentVertex` register updates, and
//!   instruction ticks.
//!
//! | App | Module | Style (Table II) | Irregular data |
//! |-----|--------|------------------|----------------|
//! | PageRank | [`pagerank`] | pull-only | 4 B ranks |
//! | Connected Components | [`components`] | push-only | 4 B labels |
//! | PageRank-delta | [`pagerank_delta`] | pull-mostly | 8 B deltas + frontier bit |
//! | Radii | [`radii`] | pull-mostly | 8 B bitmasks + frontier bit |
//! | Maximal Independent Set | [`mis`] | pull-mostly | 4 B states + frontier bit |
//!
//! Prior-work comparators for Section VII: [`pb`] (Propagation Blocking and
//! the PHI aggregation model), [`hats`] (HATS-BDFS traversal scheduling),
//! and [`tiled`] (CSR-segmenting pull PageRank). [`bfs`]
//! (direction-optimizing BFS) supports the examples.
//!
//! # Example
//!
//! ```
//! use popt_kernels::{App, pagerank};
//! use popt_graph::generators;
//! use popt_trace::CountingSink;
//!
//! let g = generators::uniform_random(100, 600, 1);
//! let ranks = pagerank::run(&g, 10);
//! assert_eq!(ranks.len(), 100);
//!
//! let plan = App::Pagerank.plan(&g);
//! let mut sink = CountingSink::new();
//! App::Pagerank.trace(&g, &plan, &mut sink);
//! assert!(sink.reads > 0);
//! ```

mod app;
pub mod bfs;
mod common;
pub mod components;
pub mod hats;
pub mod mis;
pub mod pagerank;
pub mod pagerank_delta;
pub mod pb;
pub mod radii;
pub mod tiled;

pub use app::App;
pub use common::{IrregSpec, TracePlan};
