use popt_core::IrregularStream;
use popt_graph::VertexId;
use popt_trace::{AddressSpace, RegionId, TraceEvent, TraceSink};

/// Instruction-tick estimate per edge beyond its memory accesses
/// (index arithmetic, compare, accumulate).
pub(crate) const EDGE_INSTRS: u32 = 3;
/// Instruction-tick estimate per outer-loop vertex beyond its accesses.
pub(crate) const VERTEX_INSTRS: u32 = 5;

/// One irregular data structure a kernel exposes to the graph-aware
/// policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrregSpec {
    /// The region in the plan's address space.
    pub region: RegionId,
    /// How many vertices one element of the region covers (1 for vertex
    /// data, 64 for a `u64` frontier word).
    pub vertices_per_elem: u32,
}

/// The memory layout of one kernel execution: the simulated address space
/// plus which regions are the irregularly-accessed ones.
#[derive(Debug, Clone)]
pub struct TracePlan {
    /// Simulated address space holding every kernel array.
    pub space: AddressSpace,
    /// Irregular streams, in the order the kernel declares them.
    pub irregs: Vec<IrregSpec>,
}

impl TracePlan {
    /// All region IDs in allocation order (kernels allocate their arrays in
    /// a fixed, documented order).
    pub fn region_ids(&self) -> Vec<RegionId> {
        (0..self.space.num_regions())
            .map(|i| self.space.id(i))
            .collect()
    }

    /// The `(irreg_base, irreg_bound)` register values plus line granularity
    /// for each irregular stream — what T-OPT consumes.
    pub fn irregular_streams(&self) -> Vec<IrregularStream> {
        self.irregs
            .iter()
            .map(|spec| {
                let r = self.space.region(spec.region);
                IrregularStream {
                    base: r.base(),
                    bound: r.bound(),
                    vertices_per_line: r.elems_per_line() as u32 * spec.vertices_per_elem,
                }
            })
            .collect()
    }
}

/// Emitter helper shared by the kernel trace implementations: wraps a sink
/// and the address space, providing element-indexed access emission.
pub(crate) struct Emit<'a, S: TraceSink> {
    pub space: &'a AddressSpace,
    pub sink: S,
}

impl<S: TraceSink> Emit<'_, S> {
    pub(crate) fn read(&mut self, region: RegionId, index: u64, site: u32) {
        self.sink
            .event(TraceEvent::read(self.space.addr_of(region, index), site));
    }

    pub(crate) fn write(&mut self, region: RegionId, index: u64, site: u32) {
        self.sink
            .event(TraceEvent::write(self.space.addr_of(region, index), site));
    }

    pub(crate) fn current_vertex(&mut self, v: VertexId) {
        self.sink.event(TraceEvent::CurrentVertex(v));
    }

    pub(crate) fn iteration_begin(&mut self) {
        self.sink.event(TraceEvent::IterationBegin);
    }

    pub(crate) fn instructions(&mut self, n: u32) {
        self.sink.event(TraceEvent::Instructions(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_trace::{RecordingSink, RegionClass};

    #[test]
    fn irregular_streams_carry_granularity() {
        let mut space = AddressSpace::new();
        let data = space.alloc("data", 256, 4, RegionClass::Irregular);
        let frontier = space.alloc("frontier", 4, 8, RegionClass::Irregular);
        let plan = TracePlan {
            space,
            irregs: vec![
                IrregSpec {
                    region: data,
                    vertices_per_elem: 1,
                },
                IrregSpec {
                    region: frontier,
                    vertices_per_elem: 64,
                },
            ],
        };
        let streams = plan.irregular_streams();
        assert_eq!(streams[0].vertices_per_line, 16);
        assert_eq!(streams[1].vertices_per_line, 512);
        assert!(streams[0].bound > streams[0].base);
    }

    #[test]
    fn emit_translates_indices_to_addresses() {
        let mut space = AddressSpace::new();
        let r = space.alloc("r", 8, 4, RegionClass::Streaming);
        let mut rec = RecordingSink::new();
        {
            let mut emit = Emit {
                space: &space,
                sink: &mut rec,
            };
            emit.read(r, 2, 9);
        }
        let a = rec.events()[0].as_access().unwrap();
        assert_eq!(a.addr, space.addr_of(r, 2));
        assert_eq!(a.site.0, 9);
    }
}
