//! PageRank — the paper's primary workload (pull-only, 4 B irregular
//! elements, transpose = out-CSR; Table II).
//!
//! The pull iteration is Algorithm 1 of the paper: for each destination,
//! scan its incoming neighbors in the CSC and accumulate
//! `srcData[src]` — contributions indexed by source vertex, the irregular
//! access stream P-OPT optimizes.

use crate::common::{Emit, IrregSpec, TracePlan, EDGE_INSTRS, VERTEX_INSTRS};
use popt_graph::{Graph, VertexId};
use popt_trace::{AddressSpace, RegionClass, TraceSink};

/// Damping factor used by `run`.
pub const DAMPING: f64 = 0.85;

/// Access-site IDs (PC surrogates) for the pull loop's loads/stores.
pub mod sites {
    /// Offsets-array read.
    pub const OA: u32 = 10;
    /// Neighbor-array read.
    pub const NA: u32 = 11;
    /// `srcData[src]` irregular read (Algorithm 1 line 3).
    pub const SRC: u32 = 12;
    /// `dstData[dst]` streaming write.
    pub const DST: u32 = 13;
}

/// Runs `iterations` of PageRank, returning the rank vector.
///
/// # Example
///
/// ```
/// let g = popt_graph::generators::uniform_random(50, 400, 3);
/// let ranks = popt_kernels::pagerank::run(&g, 20);
/// assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 0.2); // dangling mass aside
/// ```
pub fn run(g: &Graph, iterations: usize) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut ranks = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..iterations {
        for v in 0..n {
            let deg = g.out_degree(v as VertexId);
            contrib[v] = if deg > 0 { ranks[v] / deg as f64 } else { 0.0 };
        }
        for dst in 0..n as VertexId {
            let sum: f64 = g
                .in_neighbors(dst)
                .iter()
                .map(|&s| contrib[s as usize])
                .sum();
            ranks[dst as usize] = (1.0 - DAMPING) / n as f64 + DAMPING * sum;
        }
    }
    ranks
}

/// Lays out the pull iteration's arrays: streaming OA (8 B), NA (4 B) and
/// dstData (4 B); irregular srcData (4 B) — the paper's PR row in Table II.
pub fn plan(g: &Graph) -> TracePlan {
    let n = g.num_vertices() as u64;
    let mut space = AddressSpace::new();
    let _oa = space.alloc("oa", n + 1, 8, RegionClass::Streaming);
    let _na = space.alloc("na", g.num_edges() as u64, 4, RegionClass::Streaming);
    let src = space.alloc("srcData", n, 4, RegionClass::Irregular);
    let _dst = space.alloc("dstData", n, 4, RegionClass::Streaming);
    TracePlan {
        space,
        irregs: vec![IrregSpec {
            region: src,
            vertices_per_elem: 1,
        }],
    }
}

/// Emits the access stream of one pull iteration over all destinations, in
/// ascending vertex order.
pub fn trace<S: TraceSink>(g: &Graph, plan: &TracePlan, sink: S) {
    trace_ordered(g, plan, sink, None);
}

/// Like [`trace`], but visiting destinations in `order` if given — the hook
/// the HATS-BDFS comparison uses (Section VII-C1's "Vertex Ordered"
/// baseline passes `None`).
pub fn trace_ordered<S: TraceSink>(
    g: &Graph,
    plan: &TracePlan,
    sink: S,
    order: Option<&[VertexId]>,
) {
    let regions = plan.region_ids();
    let (oa, na, src_data, dst_data) = (regions[0], regions[1], regions[2], regions[3]);
    let mut emit = Emit {
        space: &plan.space,
        sink,
    };
    emit.iteration_begin();
    let n = g.num_vertices() as VertexId;
    let mut edge_cursor;
    for i in 0..n {
        let dst = order.map_or(i, |o| o[i as usize]);
        emit.current_vertex(dst);
        emit.read(oa, dst as u64, sites::OA);
        emit.instructions(VERTEX_INSTRS);
        edge_cursor = g.in_csr().offsets()[dst as usize];
        for &src in g.in_neighbors(dst) {
            emit.read(na, edge_cursor, sites::NA);
            emit.read(src_data, src as u64, sites::SRC);
            emit.instructions(EDGE_INSTRS);
            edge_cursor += 1;
        }
        emit.write(dst_data, dst as u64, sites::DST);
    }
}

/// Emits the access stream of a *multi-threaded* pull iteration (paper
/// Section V-F): destinations are processed in serial blocks of
/// `block_size` vertices (the paper executes epochs serially); within a
/// block, `threads` workers take contiguous sub-ranges and their accesses
/// interleave round-robin at vertex granularity, each tagged with its core
/// via [`popt_trace::TraceEvent::Core`].
///
/// `CurrentVertex` updates come only from thread 0 — the paper's
/// "software-designated main thread" policy for the shared `currVertex`
/// register.
///
/// # Panics
///
/// Panics if `threads` or `block_size` is zero.
pub fn trace_parallel<S: TraceSink>(
    g: &Graph,
    plan: &TracePlan,
    mut sink: S,
    threads: usize,
    block_size: usize,
) {
    assert!(
        threads > 0 && block_size > 0,
        "threads and block size must be positive"
    );
    let regions = plan.region_ids();
    let (oa, na, src_data, dst_data) = (regions[0], regions[1], regions[2], regions[3]);
    let n = g.num_vertices() as VertexId;
    sink.event(popt_trace::TraceEvent::IterationBegin);
    let mut block_start = 0u32;
    while block_start < n {
        let block_end = (block_start + block_size as u32).min(n);
        let span = (block_end - block_start) as usize;
        let per_thread = span.div_ceil(threads);
        // Each thread's cursor within its contiguous sub-range.
        let mut cursors: Vec<u32> = (0..threads)
            .map(|t| block_start + (t * per_thread).min(span) as u32)
            .collect();
        let limits: Vec<u32> = (0..threads)
            .map(|t| block_start + (((t + 1) * per_thread).min(span)) as u32)
            .collect();
        let mut remaining = span;
        while remaining > 0 {
            for t in 0..threads {
                if cursors[t] >= limits[t] {
                    continue;
                }
                let dst = cursors[t];
                cursors[t] += 1;
                remaining -= 1;
                let mut emit = Emit {
                    space: &plan.space,
                    sink: &mut sink,
                };
                emit.sink.event(popt_trace::TraceEvent::Core(t as u32));
                if t == 0 {
                    emit.current_vertex(dst);
                }
                emit.read(oa, dst as u64, sites::OA);
                emit.instructions(VERTEX_INSTRS);
                let base = g.in_csr().offsets()[dst as usize];
                for (i, &src) in g.in_neighbors(dst).iter().enumerate() {
                    emit.read(na, base + i as u64, sites::NA);
                    emit.read(src_data, src as u64, sites::SRC);
                    emit.instructions(EDGE_INSTRS);
                }
                emit.write(dst_data, dst as u64, sites::DST);
            }
        }
        block_start = block_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_graph::generators;
    use popt_trace::{CountingSink, RecordingSink, TraceEvent};

    #[test]
    fn ranks_form_a_distribution_without_dangling_vertices() {
        // A symmetric mesh has no dangling vertices: ranks sum to 1.
        let g = generators::mesh(12, 0, 0);
        let ranks = run(&g, 30);
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "rank mass {total}");
    }

    #[test]
    fn hubs_rank_higher() {
        let g = generators::preferential_attachment(500, 3, 1);
        let ranks = run(&g, 30);
        let hub = (0..500).max_by_key(|&v| g.in_degree(v as u32)).unwrap();
        let leaf = (0..500).min_by_key(|&v| g.in_degree(v as u32)).unwrap();
        assert!(ranks[hub] > ranks[leaf]);
    }

    #[test]
    fn trace_access_counts_match_graph_shape() {
        let g = generators::uniform_random(64, 512, 2);
        let p = plan(&g);
        let mut sink = CountingSink::new();
        trace(&g, &p, &mut sink);
        let v = g.num_vertices() as u64;
        let e = g.num_edges() as u64;
        // Per vertex: OA read + dstData write; per edge: NA read + srcData read.
        assert_eq!(sink.reads, v + 2 * e);
        assert_eq!(sink.writes, v);
        assert_eq!(sink.vertex_updates, v);
        assert_eq!(sink.iterations, 1);
    }

    #[test]
    fn srcdata_reads_follow_the_csc_order() {
        let g = popt_graph::Graph::from_edges(3, &[(2, 0), (1, 0), (0, 1)]).unwrap();
        let p = plan(&g);
        let mut rec = RecordingSink::new();
        trace(&g, &p, &mut rec);
        let src_region = &p.space.regions()[2];
        let src_reads: Vec<u64> = rec
            .events()
            .iter()
            .filter_map(|e| e.as_access())
            .filter(|a| src_region.contains(a.addr))
            .map(|a| (a.addr - src_region.base()) / 4)
            .collect();
        // dst 0 pulls from {1, 2}; dst 1 pulls from {0}.
        assert_eq!(src_reads, vec![1, 2, 0]);
    }

    #[test]
    fn parallel_trace_covers_every_vertex_and_edge() {
        let g = generators::uniform_random(100, 600, 4);
        let p = plan(&g);
        let mut serial = CountingSink::new();
        trace(&g, &p, &mut serial);
        for threads in [1usize, 4, 8] {
            let mut par = CountingSink::new();
            trace_parallel(&g, &p, &mut par, threads, 16);
            assert_eq!(par.reads, serial.reads, "threads {threads}");
            assert_eq!(par.writes, serial.writes, "threads {threads}");
            if threads > 1 {
                assert!(par.core_switches > 0);
                // Only the main thread updates currVertex.
                assert!(par.vertex_updates < serial.vertex_updates);
            }
        }
    }

    #[test]
    fn parallel_threads_stay_within_their_block() {
        // All Core(t) accesses between two block boundaries must target
        // destinations within that block.
        let g = generators::uniform_random(64, 300, 9);
        let p = plan(&g);
        let mut rec = RecordingSink::new();
        trace_parallel(&g, &p, &mut rec, 4, 16);
        let oa_region = &p.space.regions()[0];
        let mut current_block = 0u64;
        for ev in rec.events() {
            if let Some(a) = ev.as_access() {
                if oa_region.contains(a.addr) {
                    let dst = (a.addr - oa_region.base()) / 8;
                    let block = dst / 16;
                    assert!(
                        block == current_block || block == current_block + 1,
                        "dst {dst} escaped serial block {current_block}"
                    );
                    current_block = block;
                }
            }
        }
    }

    #[test]
    fn custom_order_changes_current_vertex_sequence() {
        let g = generators::uniform_random(8, 20, 3);
        let p = plan(&g);
        let order: Vec<u32> = (0..8).rev().collect();
        let mut rec = RecordingSink::new();
        trace_ordered(&g, &p, &mut rec, Some(&order));
        let seen: Vec<u32> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::CurrentVertex(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(seen, order);
    }
}
