//! PageRank-delta — frontier-based PageRank (Ligra), the paper's
//! pull-mostly workload with 8 B irregular elements plus a frontier bit
//! (Table II).
//!
//! Only vertices whose rank is still changing stay in the frontier; a pull
//! iteration reads, per incoming edge, the frontier bit-vector word *and*
//! (for active sources) the source's delta — two distinct irregular
//! streams, exercising P-OPT's multi-stream support (Section V-F).

use crate::common::{Emit, IrregSpec, TracePlan, EDGE_INSTRS, VERTEX_INSTRS};
use popt_graph::{Frontier, Graph, VertexId};
use popt_trace::{AddressSpace, RegionClass, TraceSink};

/// Damping factor.
pub const DAMPING: f64 = 0.85;
/// A vertex stays active while its delta exceeds `EPSILON / numVertices`.
pub const EPSILON: f64 = 1e-3;

/// Access-site IDs.
pub mod sites {
    /// Offsets-array read.
    pub const OA: u32 = 30;
    /// Neighbor-array read.
    pub const NA: u32 = 31;
    /// Frontier bit-vector word read (irregular).
    pub const FRONTIER: u32 = 32;
    /// `delta[src]` irregular read.
    pub const DELTA: u32 = 33;
    /// Rank update write (streaming).
    pub const RANK: u32 = 34;
}

/// Evolving state of a PageRank-delta execution; exposed so traces can
/// sample a mid-execution iteration (the paper's iteration sampling,
/// Section VI).
#[derive(Debug, Clone)]
pub struct State {
    /// Current rank estimates.
    pub ranks: Vec<f64>,
    /// Per-vertex deltas from the last iteration.
    pub deltas: Vec<f64>,
    /// Vertices whose delta is still significant.
    pub frontier: Frontier,
    /// Iterations applied so far.
    pub iteration: usize,
}

impl State {
    /// Initial state. With `r_0 = Δ_0 = (1-d)/N` the recurrence
    /// `Δ_{t+1}(v) = d · Σ Δ_t(u)/deg(u)` makes `Σ_t Δ_t` exactly the
    /// PageRank fixed point, so deltas are pure correction terms and the
    /// frontier tracks not-yet-converged vertices.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        let base = if n > 0 {
            (1.0 - DAMPING) / n as f64
        } else {
            0.0
        };
        State {
            ranks: vec![base; n],
            deltas: vec![base; n],
            frontier: Frontier::full(n),
            iteration: 0,
        }
    }

    /// Applies one pull iteration.
    pub fn step(&mut self, g: &Graph) {
        let n = g.num_vertices();
        let threshold = EPSILON / n.max(1) as f64;
        let contrib: Vec<f64> = (0..n)
            .map(|v| {
                let deg = g.out_degree(v as VertexId);
                if deg > 0 && self.frontier.contains(v as VertexId) {
                    self.deltas[v] / deg as f64
                } else {
                    0.0
                }
            })
            .collect();
        let mut next = Frontier::new(n);
        for dst in 0..n as VertexId {
            let sum: f64 = g
                .in_neighbors(dst)
                .iter()
                .filter(|&&s| self.frontier.contains(s))
                .map(|&s| contrib[s as usize])
                .sum();
            let delta = DAMPING * sum;
            self.ranks[dst as usize] += delta;
            self.deltas[dst as usize] = delta;
            if delta > threshold {
                next.insert(dst);
            }
        }
        self.frontier = next;
        self.iteration += 1;
    }
}

/// Runs until the frontier empties (or `max_iterations`), returning final
/// ranks.
pub fn run(g: &Graph, max_iterations: usize) -> Vec<f64> {
    let mut state = State::new(g);
    for _ in 0..max_iterations {
        if state.frontier.is_empty() {
            break;
        }
        state.step(g);
    }
    state.ranks
}

/// Lays out the arrays: streaming OA/NA/rank; irregular deltas (8 B) and
/// frontier words (8 B covering 64 vertices each).
pub fn plan(g: &Graph) -> TracePlan {
    let n = g.num_vertices() as u64;
    let mut space = AddressSpace::new();
    let _oa = space.alloc("oa", n + 1, 8, RegionClass::Streaming);
    let _na = space.alloc("na", g.num_edges() as u64, 4, RegionClass::Streaming);
    let delta = space.alloc("delta", n, 8, RegionClass::Irregular);
    let frontier = space.alloc("frontier", n.div_ceil(64), 8, RegionClass::Irregular);
    let _rank = space.alloc("rank", n, 8, RegionClass::Streaming);
    TracePlan {
        space,
        irregs: vec![
            IrregSpec {
                region: delta,
                vertices_per_elem: 1,
            },
            IrregSpec {
                region: frontier,
                vertices_per_elem: 64,
            },
        ],
    }
}

/// How many warm-up iterations [`trace`] applies before sampling.
pub const SAMPLED_ITERATION: usize = 2;

/// Emits the access stream of the [`SAMPLED_ITERATION`]-th pull iteration
/// (a realistic, non-trivial frontier).
pub fn trace<S: TraceSink>(g: &Graph, plan: &TracePlan, sink: S) {
    let mut state = State::new(g);
    for _ in 0..SAMPLED_ITERATION {
        if state.frontier.is_empty() {
            break;
        }
        state.step(g);
    }
    trace_iteration(g, plan, &state, sink);
}

/// Emits the access stream of one pull iteration from `state`.
pub fn trace_iteration<S: TraceSink>(g: &Graph, plan: &TracePlan, state: &State, sink: S) {
    let regions = plan.region_ids();
    let (oa, na, delta, frontier, rank) =
        (regions[0], regions[1], regions[2], regions[3], regions[4]);
    let mut emit = Emit {
        space: &plan.space,
        sink,
    };
    emit.iteration_begin();
    let n = g.num_vertices() as VertexId;
    for dst in 0..n {
        emit.current_vertex(dst);
        emit.read(oa, dst as u64, sites::OA);
        emit.instructions(VERTEX_INSTRS);
        let base = g.in_csr().offsets()[dst as usize];
        for (i, &src) in g.in_neighbors(dst).iter().enumerate() {
            emit.read(na, base + i as u64, sites::NA);
            emit.read(frontier, Frontier::word_index(src) as u64, sites::FRONTIER);
            if state.frontier.contains(src) {
                emit.read(delta, src as u64, sites::DELTA);
            }
            emit.instructions(EDGE_INSTRS);
        }
        emit.write(rank, dst as u64, sites::RANK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank;
    use popt_graph::generators;
    use popt_trace::CountingSink;

    #[test]
    fn converges_to_plain_pagerank() {
        let g = generators::mesh(10, 1, 4);
        let exact = pagerank::run(&g, 60);
        let delta = run(&g, 60);
        for v in 0..g.num_vertices() {
            assert!(
                (exact[v] - delta[v]).abs() < 1e-3,
                "vertex {v}: {} vs {}",
                exact[v],
                delta[v]
            );
        }
    }

    #[test]
    fn frontier_shrinks_over_iterations() {
        let g = generators::uniform_random(500, 3000, 8);
        let mut state = State::new(&g);
        let initial = state.frontier.len();
        for _ in 0..40 {
            state.step(&g);
        }
        assert!(
            state.frontier.len() < initial,
            "frontier still {}",
            state.frontier.len()
        );
    }

    #[test]
    fn trace_reads_frontier_per_edge_and_delta_for_active_sources() {
        let g = generators::uniform_random(128, 700, 5);
        let p = plan(&g);
        let mut sink = CountingSink::new();
        trace(&g, &p, &mut sink);
        let v = g.num_vertices() as u64;
        let e = g.num_edges() as u64;
        // OA per vertex + (NA + frontier) per edge + delta per active edge.
        assert!(sink.reads >= v + 2 * e);
        assert!(sink.reads <= v + 3 * e);
        assert_eq!(sink.writes, v);
    }

    #[test]
    fn empty_graph_runs() {
        let g = popt_graph::Graph::from_edges(0, &[]).unwrap();
        assert!(run(&g, 5).is_empty());
    }
}
