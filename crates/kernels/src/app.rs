use crate::{components, mis, pagerank, pagerank_delta, radii, TracePlan};
use popt_graph::{Direction, Graph};
use popt_trace::TraceSink;

/// The five applications of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// PageRank (GAP): pull-only, dense.
    Pagerank,
    /// Connected Components (GAP, Shiloach-Vishkin): push-only, dense.
    Components,
    /// PageRank-delta (Ligra): pull-mostly, frontier.
    PagerankDelta,
    /// Radii estimation (Ligra): pull-mostly, frontier.
    Radii,
    /// Maximal Independent Set (Ligra): pull-mostly, frontier.
    Mis,
}

impl App {
    /// All applications in the paper's presentation order.
    pub const ALL: [App; 5] = [
        App::Pagerank,
        App::Components,
        App::PagerankDelta,
        App::Radii,
        App::Mis,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            App::Pagerank => "pr",
            App::Components => "cc",
            App::PagerankDelta => "pr-delta",
            App::Radii => "radii",
            App::Mis => "mis",
        }
    }

    /// Traversal direction of the traced iteration; determines which CSR is
    /// the transpose for next-reference purposes (Table II's "Transpose"
    /// row).
    pub fn direction(&self) -> Direction {
        match self {
            App::Components => Direction::Push,
            _ => Direction::Pull,
        }
    }

    /// Whether the application uses a frontier bit-vector (Table II).
    pub fn uses_frontier(&self) -> bool {
        matches!(self, App::PagerankDelta | App::Radii | App::Mis)
    }

    /// Irregular element size in bytes (Table II's "irregData ElemSz").
    pub fn irreg_elem_bytes(&self) -> u64 {
        match self {
            App::Pagerank | App::Components | App::Mis => 4,
            App::PagerankDelta | App::Radii => 8,
        }
    }

    /// Builds the simulated memory layout for a traced run.
    pub fn plan(&self, g: &Graph) -> TracePlan {
        match self {
            App::Pagerank => pagerank::plan(g),
            App::Components => components::plan(g),
            App::PagerankDelta => pagerank_delta::plan(g),
            App::Radii => radii::plan(g),
            App::Mis => mis::plan(g),
        }
    }

    /// Emits the application's sampled-iteration access stream.
    pub fn trace(&self, g: &Graph, plan: &TracePlan, sink: &mut dyn TraceSink) {
        match self {
            App::Pagerank => pagerank::trace(g, plan, sink),
            App::Components => components::trace(g, plan, sink),
            App::PagerankDelta => pagerank_delta::trace(g, plan, sink),
            App::Radii => radii::trace(g, plan, sink),
            App::Mis => mis::trace(g, plan, sink),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_graph::generators;
    use popt_trace::CountingSink;

    #[test]
    fn table2_rows_match_the_paper() {
        assert_eq!(App::Pagerank.direction(), Direction::Pull);
        assert_eq!(App::Components.direction(), Direction::Push);
        assert!(!App::Pagerank.uses_frontier());
        assert!(!App::Components.uses_frontier());
        assert!(App::PagerankDelta.uses_frontier());
        assert!(App::Radii.uses_frontier());
        assert!(App::Mis.uses_frontier());
        assert_eq!(App::Pagerank.irreg_elem_bytes(), 4);
        assert_eq!(App::PagerankDelta.irreg_elem_bytes(), 8);
        assert_eq!(App::Radii.irreg_elem_bytes(), 8);
        assert_eq!(App::Mis.irreg_elem_bytes(), 4);
    }

    #[test]
    fn every_app_plans_and_traces() {
        let g = generators::uniform_random(128, 700, 6);
        for app in App::ALL {
            let plan = app.plan(&g);
            let expected_irregs = if app.uses_frontier() { 2 } else { 1 };
            assert_eq!(plan.irregs.len(), expected_irregs, "{app}");
            let mut sink = CountingSink::new();
            app.trace(&g, &plan, &mut sink);
            assert!(sink.reads > 0, "{app} produced no reads");
            assert!(
                sink.vertex_updates > 0,
                "{app} emitted no currVertex updates"
            );
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let g = generators::uniform_random(64, 300, 2);
        for app in App::ALL {
            let plan = app.plan(&g);
            let mut a = popt_trace::RecordingSink::new();
            let mut b = popt_trace::RecordingSink::new();
            app.trace(&g, &plan, &mut a);
            app.trace(&g, &plan, &mut b);
            assert_eq!(a.events(), b.events(), "{app}");
        }
    }
}
