//! Connected Components via Shiloach-Vishkin-style label propagation —
//! the paper's push-only workload (4 B irregular elements, transpose =
//! in-CSC; Table II).
//!
//! The push iteration scans each source's *outgoing* neighbors and updates
//! `comp[dst]` — destination-indexed irregular accesses, the mirror image
//! of PageRank's pull pattern. The transpose consulted for next references
//! is therefore the CSC.

use crate::common::{Emit, IrregSpec, TracePlan, EDGE_INSTRS, VERTEX_INSTRS};
use popt_graph::{Graph, VertexId};
use popt_trace::{AddressSpace, RegionClass, TraceSink};

/// Access-site IDs for the push loop.
pub mod sites {
    /// Offsets-array read.
    pub const OA: u32 = 20;
    /// Neighbor-array read.
    pub const NA: u32 = 21;
    /// `comp[dst]` irregular read.
    pub const COMP_READ: u32 = 22;
    /// `comp[dst]` irregular write (hook).
    pub const COMP_WRITE: u32 = 23;
    /// `comp[src]` streaming read.
    pub const COMP_SRC: u32 = 24;
}

/// Computes connected components of the *underlying undirected* graph
/// (hooking over both directions plus pointer-jumping compression, the
/// Shiloach-Vishkin structure). Returns the component label (smallest
/// member vertex ID) per vertex.
///
/// # Example
///
/// ```
/// let g = popt_graph::Graph::from_edges(5, &[(0, 1), (3, 4)])?;
/// let comp = popt_kernels::components::run(&g);
/// assert_eq!(comp[0], comp[1]);
/// assert_eq!(comp[3], comp[4]);
/// assert_ne!(comp[0], comp[3]);
/// # Ok::<(), popt_graph::GraphError>(())
/// ```
pub fn run(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut comp: Vec<VertexId> = (0..n as VertexId).collect();
    let mut changed = true;
    while changed {
        changed = false;
        // Hooking: push smaller labels along edges (both directions, since
        // components are defined on the undirected view).
        for src in 0..n as VertexId {
            let cs = comp[src as usize];
            for &dst in g.out_neighbors(src) {
                let cd = comp[dst as usize];
                if cs < cd {
                    comp[dst as usize] = cs;
                    changed = true;
                } else if cd < comp[src as usize] {
                    comp[src as usize] = cd;
                    changed = true;
                }
            }
        }
        // Compression: pointer jumping.
        for v in 0..n {
            while comp[v] != comp[comp[v] as usize] {
                comp[v] = comp[comp[v] as usize];
            }
        }
    }
    comp
}

/// Lays out the push iteration's arrays: streaming OA/NA plus the `comp`
/// array. `comp` is *irregularly* written through `dst` indices; the
/// streaming `comp[src]` reads of the outer loop also land there, matching
/// the real kernel where one array serves both roles — classification by
/// region necessarily marks it irregular, exactly like the paper's
/// `irreg_base`/`bound` scheme would.
pub fn plan(g: &Graph) -> TracePlan {
    let n = g.num_vertices() as u64;
    let mut space = AddressSpace::new();
    let _oa = space.alloc("oa", n + 1, 8, RegionClass::Streaming);
    let _na = space.alloc("na", g.num_edges() as u64, 4, RegionClass::Streaming);
    let comp = space.alloc("comp", n, 4, RegionClass::Irregular);
    TracePlan {
        space,
        irregs: vec![IrregSpec {
            region: comp,
            vertices_per_elem: 1,
        }],
    }
}

/// Emits the access stream of one push (hooking) iteration.
pub fn trace<S: TraceSink>(g: &Graph, plan: &TracePlan, sink: S) {
    let regions = plan.region_ids();
    let (oa, na, comp) = (regions[0], regions[1], regions[2]);
    let mut emit = Emit {
        space: &plan.space,
        sink,
    };
    emit.iteration_begin();
    let n = g.num_vertices() as VertexId;
    for src in 0..n {
        emit.current_vertex(src);
        emit.read(oa, src as u64, sites::OA);
        emit.read(comp, src as u64, sites::COMP_SRC);
        emit.instructions(VERTEX_INSTRS);
        let base = g.out_csr().offsets()[src as usize];
        for (i, &dst) in g.out_neighbors(src).iter().enumerate() {
            emit.read(na, base + i as u64, sites::NA);
            emit.read(comp, dst as u64, sites::COMP_READ);
            // First-iteration hooking writes when src's label is smaller.
            if src < dst {
                emit.write(comp, dst as u64, sites::COMP_WRITE);
            }
            emit.instructions(EDGE_INSTRS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_graph::generators;
    use popt_trace::CountingSink;
    use std::collections::VecDeque;

    /// Reference: BFS components over the undirected view.
    fn bfs_components(g: &Graph) -> Vec<VertexId> {
        let n = g.num_vertices();
        let mut comp = vec![u32::MAX; n];
        for start in 0..n as VertexId {
            if comp[start as usize] != u32::MAX {
                continue;
            }
            comp[start as usize] = start;
            let mut q = VecDeque::from([start]);
            while let Some(v) = q.pop_front() {
                for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = start;
                        q.push_back(w);
                    }
                }
            }
        }
        comp
    }

    #[test]
    fn matches_bfs_reference_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::uniform_random(200, 300, seed); // sparse: many components
            let sv = run(&g);
            let bfs = bfs_components(&g);
            // Labels must induce the same partition; both use the smallest
            // member as representative, so they are equal outright.
            assert_eq!(sv, bfs, "seed {seed}");
        }
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let g = popt_graph::Graph::from_edges(4, &[(1, 2)]).unwrap();
        let comp = run(&g);
        assert_eq!(comp, vec![0, 1, 1, 3]);
    }

    #[test]
    fn trace_emits_push_pattern() {
        let g = generators::uniform_random(64, 400, 9);
        let p = plan(&g);
        let mut sink = CountingSink::new();
        trace(&g, &p, &mut sink);
        let v = g.num_vertices() as u64;
        let e = g.num_edges() as u64;
        // Per vertex: OA + comp[src]; per edge: NA + comp[dst].
        assert_eq!(sink.reads, 2 * v + 2 * e);
        assert!(sink.writes <= e);
        assert_eq!(sink.vertex_updates, v);
    }
}
