//! Direction-optimizing BFS (Beamer et al. [11]) — the framework
//! optimization the paper's frontier-based workloads rely on, provided as
//! a standalone kernel for the examples.
//!
//! Sparse frontiers expand top-down (push); once the frontier covers more
//! than a threshold fraction of the graph, iterations switch bottom-up
//! (pull), scanning unvisited vertices' incoming neighbors.

use popt_graph::{Frontier, Graph, VertexId};

/// Frontier density above which iterations run bottom-up.
pub const SWITCH_THRESHOLD: f64 = 0.05;

/// Result of a BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Distance from the source (`u32::MAX` when unreachable).
    pub dist: Vec<u32>,
    /// Direction chosen per iteration (`true` = pull/bottom-up).
    pub pulled: Vec<bool>,
}

/// Runs a direction-optimizing BFS from `source` over out-edges.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Example
///
/// ```
/// let g = popt_graph::Graph::from_edges(4, &[(0, 1), (1, 2)])?;
/// let r = popt_kernels::bfs::run(&g, 0);
/// assert_eq!(&r.dist[..3], &[0, 1, 2]);
/// assert_eq!(r.dist[3], u32::MAX);
/// # Ok::<(), popt_graph::GraphError>(())
/// ```
pub fn run(g: &Graph, source: VertexId) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = Frontier::new(n);
    frontier.insert(source);
    let mut pulled = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let pull = frontier.density() >= SWITCH_THRESHOLD;
        pulled.push(pull);
        let mut next = Frontier::new(n);
        if pull {
            for v in 0..n as VertexId {
                if dist[v as usize] != u32::MAX {
                    continue;
                }
                if g.in_neighbors(v).iter().any(|&u| frontier.contains(u)) {
                    dist[v as usize] = level;
                    next.insert(v);
                }
            }
        } else {
            for u in frontier.iter() {
                for &v in g.out_neighbors(u) {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = level;
                        next.insert(v);
                    }
                }
            }
        }
        frontier = next;
    }
    BfsResult { dist, pulled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_graph::generators;
    use std::collections::VecDeque;

    fn reference_bfs(g: &Graph, source: VertexId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; g.num_vertices()];
        dist[source as usize] = 0;
        let mut q = VecDeque::from([source]);
        while let Some(v) = q.pop_front() {
            for &w in g.out_neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }

    #[test]
    fn matches_reference_bfs() {
        for seed in 0..4 {
            let g = generators::uniform_random(400, 2400, seed);
            let r = run(&g, (seed % 17) as u32);
            assert_eq!(r.dist, reference_bfs(&g, (seed % 17) as u32), "seed {seed}");
        }
    }

    #[test]
    fn dense_graphs_trigger_pull_iterations() {
        let g = generators::uniform_random(512, 8192, 1);
        let r = run(&g, 0);
        assert!(
            r.pulled.iter().any(|&p| p),
            "expansion should densify and switch to pull"
        );
    }

    #[test]
    fn high_diameter_meshes_stay_push_longer() {
        let g = generators::mesh(32, 0, 0);
        let r = run(&g, 0);
        let push_prefix = r.pulled.iter().take_while(|&&p| !p).count();
        assert!(push_prefix >= 3, "mesh BFS should stay push for a while");
    }
}
