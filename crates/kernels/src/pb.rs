//! Propagation Blocking (Beamer et al. [10]) and the PHI in-cache update
//! aggregation model (Mukkara et al. [41]) — the Figure 14 study.
//!
//! Both optimize the *scatter* (push) phase of PageRank-style kernels:
//!
//! * **PB** bins updates by destination range during the dominant *binning*
//!   phase: appends go to one active cache line per bin, turning random
//!   scatter into a small set of sequential streams. We model each bin's
//!   append buffer as its (cyclically rewritten) active line, which
//!   preserves the reuse structure replacement policies see; the
//!   policy-independent cold flush traffic of full lines is folded into
//!   the line's rewrites.
//! * **PHI** scatters directly but coalesces commutative updates in a
//!   private aggregation structure; only evicted (uncoalesced) updates
//!   reach the LLC. Its effectiveness depends on private-cache-level
//!   locality — high for power-law graphs (hub updates repeat), low for
//!   uniform graphs, exactly the contrast Figure 14 draws.

use crate::common::{Emit, IrregSpec, TracePlan, EDGE_INSTRS, VERTEX_INSTRS};
use popt_graph::{Csr, Graph, VertexId};
use popt_trace::{AddressSpace, RegionClass, TraceSink};

/// Access-site IDs.
pub mod sites {
    /// Offsets-array read.
    pub const OA: u32 = 60;
    /// Neighbor-array read.
    pub const NA: u32 = 61;
    /// Contribution read (streaming, src-major).
    pub const CONTRIB: u32 = 62;
    /// Bin append write (PB).
    pub const BIN: u32 = 63;
    /// Direct destination update (PHI).
    pub const DST: u32 = 64;
}

/// Elements of 4 B in one bin's active line.
const ELEMS_PER_BIN_LINE: u64 = 16;

/// Destination-range bins for PB. `num_bins` should divide the vertex
/// space into ranges that fit a private cache during the accumulate phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinningConfig {
    /// Number of destination-range bins.
    pub num_bins: usize,
}

impl BinningConfig {
    /// PB's usual sizing: destination ranges that fit the (scaled) L2.
    pub fn for_graph(g: &Graph) -> Self {
        // 32 KB scaled L2 / 4 B elements = 8K destinations per bin.
        let span = 8 * 1024;
        BinningConfig {
            num_bins: g.num_vertices().div_ceil(span).max(1),
        }
    }

    /// Destinations per bin for a graph of `n` vertices.
    pub fn span(&self, n: usize) -> usize {
        n.div_ceil(self.num_bins).max(1)
    }

    /// Bin of destination `dst`.
    pub fn bin_of(&self, dst: VertexId, n: usize) -> usize {
        (dst as usize / self.span(n)).min(self.num_bins - 1)
    }
}

/// Builds the bin-granular transpose: "vertex" `b` of the result is bin
/// `b`, whose neighbor list is the sorted sources having an edge into
/// `b`'s destination range. A Rereference Matrix built on this (rows
/// covering one bin each via [`popt_core::RerefMatrix::build_range`])
/// gives P-OPT the next source that touches each bin's active line.
pub fn bin_transpose(g: &Graph, cfg: BinningConfig) -> Csr {
    let n = g.num_vertices();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(g.num_edges());
    for src in 0..n as VertexId {
        for &dst in g.out_neighbors(src) {
            edges.push((cfg.bin_of(dst, n) as VertexId, src));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Csr::from_edges(n.max(cfg.num_bins), &edges).expect("bin ids and sources are in range")
}

/// Lays out the PB binning phase: streaming OA/NA/contributions, one
/// irregular active line per bin, plus the streaming spill region that
/// absorbs filled bin lines.
pub fn plan_pb(g: &Graph, cfg: BinningConfig) -> TracePlan {
    let n = g.num_vertices() as u64;
    let mut space = AddressSpace::new();
    let _oa = space.alloc("oa", n + 1, 8, RegionClass::Streaming);
    let _na = space.alloc("na", g.num_edges() as u64, 4, RegionClass::Streaming);
    let _contrib = space.alloc("contrib", n, 4, RegionClass::Streaming);
    let bins = space.alloc(
        "bins",
        cfg.num_bins as u64 * ELEMS_PER_BIN_LINE,
        4,
        RegionClass::Irregular,
    );
    // Every full active line spills to the bin's DRAM segment; the spill
    // stream is compulsory, sequential-per-bin write traffic.
    let _spill = space.alloc(
        "bin_spill",
        (g.num_edges() as u64).max(1),
        4,
        RegionClass::Streaming,
    );
    // One row per bin line; granularity is informational here (the P-OPT
    // binding for bins is built from `bin_transpose`, not from this spec).
    TracePlan {
        space,
        irregs: vec![IrregSpec {
            region: bins,
            vertices_per_elem: 1,
        }],
    }
}

/// Emits the PB binning phase: per edge, a streaming contribution read and
/// an append into the destination's bin; every 16th append to a bin spills
/// the filled line toward DRAM (the compulsory |E|/16 lines of bin-buffer
/// write traffic software PB pays).
pub fn trace_pb<S: TraceSink>(g: &Graph, cfg: BinningConfig, plan: &TracePlan, sink: S) {
    let regions = plan.region_ids();
    let (oa, na, contrib, bins, spill) =
        (regions[0], regions[1], regions[2], regions[3], regions[4]);
    let mut emit = Emit {
        space: &plan.space,
        sink,
    };
    emit.iteration_begin();
    let n = g.num_vertices();
    let mut cursors = vec![0u64; cfg.num_bins];
    let mut edge_cursor = 0u64;
    let mut spill_cursor = 0u64;
    for src in 0..n as VertexId {
        emit.current_vertex(src);
        emit.read(oa, src as u64, sites::OA);
        emit.read(contrib, src as u64, sites::CONTRIB);
        emit.instructions(VERTEX_INSTRS);
        for &dst in g.out_neighbors(src) {
            emit.read(na, edge_cursor, sites::NA);
            let b = cfg.bin_of(dst, n);
            let slot = b as u64 * ELEMS_PER_BIN_LINE + cursors[b] % ELEMS_PER_BIN_LINE;
            emit.write(bins, slot, sites::BIN);
            cursors[b] += 1;
            if cursors[b].is_multiple_of(ELEMS_PER_BIN_LINE) {
                // The active line filled up: one line of spill traffic.
                emit.write(spill, spill_cursor * ELEMS_PER_BIN_LINE, sites::BIN);
                spill_cursor += 1;
            }
            emit.instructions(EDGE_INSTRS);
            edge_cursor += 1;
        }
    }
}

/// PHI's private aggregation structure: a direct-mapped table of
/// destination accumulators. Updates that hit coalesce (no LLC traffic);
/// conflicting updates evict the old entry to memory.
#[derive(Debug, Clone)]
pub struct PhiModel {
    slots: Vec<Option<VertexId>>,
    /// Updates coalesced (absorbed without LLC traffic).
    pub coalesced: u64,
    /// Updates forwarded to the LLC.
    pub forwarded: u64,
}

impl PhiModel {
    /// Creates a table with `entries` slots (the paper sizes PHI to the
    /// private cache; 4096 × 8 B matches the scaled L2).
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "PHI needs at least one slot");
        PhiModel {
            slots: vec![None; entries],
            coalesced: 0,
            forwarded: 0,
        }
    }

    /// Offers an update to `dst`; returns the destination whose accumulated
    /// update must be written out now, if any.
    pub fn offer(&mut self, dst: VertexId) -> Option<VertexId> {
        let idx = dst as usize % self.slots.len();
        match self.slots[idx] {
            Some(cur) if cur == dst => {
                self.coalesced += 1;
                None
            }
            old => {
                self.slots[idx] = Some(dst);
                if old.is_some() {
                    self.forwarded += 1;
                }
                old
            }
        }
    }

    /// Drains every resident accumulator (end of phase).
    pub fn flush(&mut self) -> Vec<VertexId> {
        let out: Vec<VertexId> = self.slots.iter().flatten().copied().collect();
        self.forwarded += out.len() as u64;
        self.slots.iter_mut().for_each(|s| *s = None);
        out
    }
}

/// Lays out the PHI scatter phase: streaming OA/NA/contributions plus the
/// irregular destination array the filtered updates land in.
pub fn plan_phi(g: &Graph) -> TracePlan {
    let n = g.num_vertices() as u64;
    let mut space = AddressSpace::new();
    let _oa = space.alloc("oa", n + 1, 8, RegionClass::Streaming);
    let _na = space.alloc("na", g.num_edges() as u64, 4, RegionClass::Streaming);
    let _contrib = space.alloc("contrib", n, 4, RegionClass::Streaming);
    let dst = space.alloc("dstData", n, 4, RegionClass::Irregular);
    TracePlan {
        space,
        irregs: vec![IrregSpec {
            region: dst,
            vertices_per_elem: 1,
        }],
    }
}

/// Emits the PHI scatter phase: per edge an update is offered to the
/// aggregation table; only evictions (and the final flush) reach the LLC
/// as irregular `dstData` writes.
pub fn trace_phi<S: TraceSink>(g: &Graph, phi_entries: usize, plan: &TracePlan, sink: S) {
    let regions = plan.region_ids();
    let (oa, na, contrib, dst_data) = (regions[0], regions[1], regions[2], regions[3]);
    let mut emit = Emit {
        space: &plan.space,
        sink,
    };
    emit.iteration_begin();
    let mut phi = PhiModel::new(phi_entries);
    let n = g.num_vertices();
    let mut edge_cursor = 0u64;
    for src in 0..n as VertexId {
        emit.current_vertex(src);
        emit.read(oa, src as u64, sites::OA);
        emit.read(contrib, src as u64, sites::CONTRIB);
        emit.instructions(VERTEX_INSTRS);
        for &dst in g.out_neighbors(src) {
            emit.read(na, edge_cursor, sites::NA);
            if let Some(evicted) = phi.offer(dst) {
                emit.write(dst_data, evicted as u64, sites::DST);
            }
            emit.instructions(EDGE_INSTRS);
            edge_cursor += 1;
        }
    }
    for dst in phi.flush() {
        emit.write(dst_data, dst as u64, sites::DST);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_graph::generators;
    use popt_trace::CountingSink;

    #[test]
    fn bin_config_partitions_destinations() {
        let g = generators::uniform_random(1000, 4000, 3);
        let cfg = BinningConfig { num_bins: 8 };
        for dst in 0..1000u32 {
            assert!(cfg.bin_of(dst, 1000) < 8);
        }
        assert_eq!(cfg.bin_of(0, 1000), 0);
        assert_eq!(cfg.bin_of(999, 1000), 7);
    }

    #[test]
    fn bin_transpose_lists_sources_per_bin() {
        let g = popt_graph::Graph::from_edges(8, &[(3, 0), (5, 1), (3, 7)]).unwrap();
        let cfg = BinningConfig { num_bins: 2 }; // bins: [0,4), [4,8)
        let t = bin_transpose(&g, cfg);
        assert_eq!(t.neighbors(0), &[3, 5]); // edges into dsts 0..4
        assert_eq!(t.neighbors(1), &[3]); // edge into dst 7
    }

    #[test]
    fn pb_trace_writes_one_append_per_edge_plus_spills() {
        let g = generators::uniform_random(256, 2048, 1);
        let cfg = BinningConfig { num_bins: 4 };
        let p = plan_pb(&g, cfg);
        let mut sink = CountingSink::new();
        trace_pb(&g, cfg, &p, &mut sink);
        let e = g.num_edges() as u64;
        // One append per edge plus one spill per filled 16-entry line.
        assert!(sink.writes >= e + e / 16 - cfg.num_bins as u64);
        assert!(sink.writes <= e + e / 16 + cfg.num_bins as u64);
    }

    #[test]
    fn phi_coalesces_hub_updates_on_skewed_graphs() {
        let kron = generators::rmat(12, 1 << 14, generators::RmatParams::KRONECKER, 2);
        let urand = generators::uniform_random(1 << 12, 1 << 14, 2);
        let ratio = |g: &Graph| {
            let mut phi = PhiModel::new(1024);
            for src in 0..g.num_vertices() as u32 {
                for &dst in g.out_neighbors(src) {
                    phi.offer(dst);
                }
            }
            phi.coalesced as f64 / g.num_edges() as f64
        };
        let rk = ratio(&kron);
        let ru = ratio(&urand);
        assert!(
            rk > ru + 0.1,
            "PHI should coalesce far more on KRON ({rk:.2}) than URAND ({ru:.2})"
        );
    }

    #[test]
    fn phi_trace_emits_fewer_irregular_writes_than_edges() {
        let g = generators::rmat(10, 8192, generators::RmatParams::KRONECKER, 4);
        let p = plan_phi(&g);
        let mut sink = CountingSink::new();
        trace_phi(&g, 1024, &p, &mut sink);
        assert!(
            sink.writes < g.num_edges() as u64,
            "coalescing must reduce writes"
        );
    }

    #[test]
    fn phi_flush_accounts_for_all_updates() {
        let mut phi = PhiModel::new(4);
        for dst in [1u32, 1, 2, 3, 5, 1] {
            phi.offer(dst);
        }
        let flushed = phi.flush();
        // Every offered update is either coalesced or forwarded.
        assert_eq!(phi.coalesced + phi.forwarded, 6);
        assert!(flushed.len() <= 4);
        // Table is empty after the flush.
        assert!(phi.flush().is_empty());
    }
}
